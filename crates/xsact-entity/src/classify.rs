//! The entity identifier: structural node classification.
//!
//! Following XSeek (reference \[3\] of the paper), nodes of a data-centric XML
//! document play one of three roles, inferred from the data's structure
//! (no schema required):
//!
//! * **Entity** — a node "corresponding to a `*`-node in the schema": its tag
//!   occurs multiple times under a single parent somewhere in the data, and
//!   it has internal structure (element children). Example: `product`,
//!   `review`.
//! * **Attribute** — a leaf element carrying a value. Example: `name`,
//!   `rating`, `compact`.
//! * **Connection** — everything else: non-repeating internal nodes that
//!   merely group related items. Example: `pros`, `reviews`, `uses`.
//!
//! Classification is computed once per document over *tag paths* (the chain
//! of tags from the root), so every instance of `/shop/product/reviews/review`
//! receives the same class — exactly how XSeek's summary-based inference
//! behaves.
//!
//! Paths are interned: the summary builds a **trie keyed by
//! `(parent path, tag symbol)`** — one [`PathId`] per distinct tag path —
//! and records each node's path id in a flat per-node table. Classifying a
//! node is therefore two array lookups, and the `a/b/c` display string of a
//! path is materialised once per *distinct* path instead of once per node.

use std::collections::HashMap;
use xsact_xml::{Document, NodeId, Sym};

/// The inferred role of a node (more precisely, of its tag path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// A real-world object with its own identity (repeating, structured).
    Entity,
    /// A property of an entity (leaf element with a value).
    Attribute,
    /// A grouping node connecting entities and attributes.
    Connection,
}

/// Dense handle of a distinct tag path inside one [`StructureSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(u32);

impl PathId {
    /// The dense index of this path (`0..summary.path_count()`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Default, Clone)]
struct PathInfo {
    /// Did any parent hold two or more children with this tag?
    repeats: bool,
    /// Number of instances that have at least one element child.
    internal_instances: usize,
}

#[derive(Debug, Clone)]
struct PathData {
    /// The rendered `a/b/c` path — one `String` per distinct path.
    display: String,
    info: PathInfo,
}

/// Per-document structural summary mapping interned tag paths to classes.
///
/// Built once with [`StructureSummary::infer`]; classification of an
/// individual node is then two O(1) array lookups (node → path id →
/// class), with no string construction or hashing on the query path.
#[derive(Debug, Clone)]
pub struct StructureSummary {
    /// One entry per distinct tag path.
    paths: Vec<PathData>,
    /// Trie edges: `(parent path, child tag)` → child path. The root
    /// element's path is keyed under `(u32::MAX, root tag)`.
    edges: HashMap<(u32, Sym), PathId>,
    /// Per node arena index, the node's path id (`None` for text runs).
    node_paths: Vec<Option<PathId>>,
    /// Display string → path id, for the string-typed compatibility API.
    by_display: HashMap<String, PathId>,
}

const NO_PARENT: u32 = u32::MAX;

impl StructureSummary {
    /// Infers the structural summary of `doc` in a single pass.
    pub fn infer(doc: &Document) -> Self {
        let mut summary = StructureSummary {
            paths: Vec::new(),
            edges: HashMap::new(),
            node_paths: vec![None; doc.len()],
            by_display: HashMap::new(),
        };
        // Reused per node: how many children share each tag.
        let mut child_tag_counts: HashMap<Sym, u32> = HashMap::new();
        // Preorder guarantees a parent's path id exists before its children
        // are visited.
        for node in doc.all_nodes() {
            let Some(tag) = doc.tag_sym(node) else { continue };
            let parent_path = match doc.parent(node) {
                Some(p) => match summary.node_paths[p.index()] {
                    Some(pid) => pid.0,
                    // Parent is a text run — impossible for elements.
                    None => NO_PARENT,
                },
                None => NO_PARENT,
            };
            let pid = summary.path_for(doc, parent_path, tag);
            summary.node_paths[node.index()] = Some(pid);

            child_tag_counts.clear();
            let mut has_element_child = false;
            for child in doc.child_elements(node) {
                has_element_child = true;
                *child_tag_counts
                    .entry(doc.tag_sym(child).expect("child_elements yields elements"))
                    .or_insert(0) += 1;
            }
            if has_element_child {
                summary.paths[pid.index()].info.internal_instances += 1;
            }
            for (&tag, &count) in &child_tag_counts {
                if count >= 2 {
                    let child_pid = summary.path_for(doc, pid.0, tag);
                    summary.paths[child_pid.index()].info.repeats = true;
                }
            }
        }
        summary
    }

    /// The path id of the trie node `(parent, tag)`, creating it on first
    /// sight.
    fn path_for(&mut self, doc: &Document, parent: u32, tag: Sym) -> PathId {
        if let Some(&pid) = self.edges.get(&(parent, tag)) {
            return pid;
        }
        let tag_str = doc.interner().resolve(tag);
        let display = if parent == NO_PARENT {
            tag_str.to_owned()
        } else {
            format!("{}/{}", self.paths[parent as usize].display, tag_str)
        };
        let pid = PathId(self.paths.len() as u32);
        self.paths.push(PathData { display: display.clone(), info: PathInfo::default() });
        self.edges.insert((parent, tag), pid);
        self.by_display.insert(display, pid);
        pid
    }

    /// The path id of an element node, or `None` for text runs (and nodes
    /// outside the summarised document).
    pub fn path_id_of(&self, node: NodeId) -> Option<PathId> {
        self.node_paths.get(node.index()).copied().flatten()
    }

    /// The `a/b/c` display string of a path.
    pub fn path_display(&self, path: PathId) -> &str {
        &self.paths[path.index()].display
    }

    /// Classifies the tag path of `node` within `doc`.
    ///
    /// The root element is always an entity (it is the single instance of the
    /// top-level object the document describes).
    pub fn class_of(&self, doc: &Document, node: NodeId) -> NodeClass {
        if !doc.is_element(node) {
            // Text runs take the role of the value they carry.
            return NodeClass::Attribute;
        }
        if doc.parent(node).is_none() {
            return NodeClass::Entity;
        }
        match self.path_id_of(node) {
            Some(pid) => self.class_of_id(pid),
            None => NodeClass::Connection,
        }
    }

    /// Classifies a path by its id.
    pub fn class_of_id(&self, path: PathId) -> NodeClass {
        let info = &self.paths[path.index()].info;
        let ever_internal = info.internal_instances > 0;
        if info.repeats && ever_internal {
            NodeClass::Entity
        } else if !ever_internal {
            NodeClass::Attribute
        } else {
            NodeClass::Connection
        }
    }

    /// Classifies a raw `a/b/c` tag path.
    pub fn class_of_path(&self, path: &str) -> NodeClass {
        match self.by_display.get(path) {
            Some(&pid) => self.class_of_id(pid),
            None => NodeClass::Connection,
        }
    }

    /// Whether the tag path is known to repeat under a single parent.
    pub fn repeats(&self, path: &str) -> bool {
        self.by_display.get(path).is_some_and(|&pid| self.paths[pid.index()].info.repeats)
    }

    /// Number of distinct tag paths observed.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Iterates `(path, class)` pairs, useful for debugging and the CLI's
    /// schema view. Order is unspecified.
    pub fn classes(&self) -> impl Iterator<Item = (&str, NodeClass)> + '_ {
        (0..self.paths.len())
            .map(move |i| (self.paths[i].display.as_str(), self.class_of_id(PathId(i as u32))))
    }
}

/// The `a/b/c` tag-path key of an element node — the string the summary's
/// interned [`PathId`]s stand for. The tests use it as an oracle for
/// [`StructureSummary::path_display`]; production code resolves paths
/// through the summary instead.
#[cfg(test)]
pub(crate) fn path_key(doc: &Document, node: NodeId) -> String {
    doc.tag_path(node).join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::parse_document;

    /// A miniature of the paper's Product Reviews dataset (Figure 1).
    fn review_doc() -> Document {
        parse_document(
            "<shop>\
               <product>\
                 <name>TomTom Go 630</name>\
                 <rating>4.2</rating>\
                 <reviews>\
                   <review><pros><compact>yes</compact><easy_to_read>yes</easy_to_read></pros>\
                     <uses><best_use><auto>yes</auto></best_use></uses></review>\
                   <review><pros><compact>yes</compact></pros></review>\
                 </reviews>\
               </product>\
               <product>\
                 <name>Garmin Nuvi</name>\
                 <rating>4.0</rating>\
                 <reviews><review><pros><compact>yes</compact></pros></review></reviews>\
               </product>\
             </shop>",
        )
        .unwrap()
    }

    fn class(summary: &StructureSummary, path: &str) -> NodeClass {
        summary.class_of_path(path)
    }

    #[test]
    fn products_and_reviews_are_entities() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "shop/product"), NodeClass::Entity);
        assert_eq!(class(&s, "shop/product/reviews/review"), NodeClass::Entity);
    }

    #[test]
    fn leaves_are_attributes() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "shop/product/name"), NodeClass::Attribute);
        assert_eq!(class(&s, "shop/product/rating"), NodeClass::Attribute);
        assert_eq!(class(&s, "shop/product/reviews/review/pros/compact"), NodeClass::Attribute);
        assert_eq!(
            class(&s, "shop/product/reviews/review/uses/best_use/auto"),
            NodeClass::Attribute
        );
    }

    #[test]
    fn grouping_nodes_are_connections() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "shop/product/reviews"), NodeClass::Connection);
        assert_eq!(class(&s, "shop/product/reviews/review/pros"), NodeClass::Connection);
        assert_eq!(class(&s, "shop/product/reviews/review/uses"), NodeClass::Connection);
        assert_eq!(class(&s, "shop/product/reviews/review/uses/best_use"), NodeClass::Connection);
    }

    #[test]
    fn root_is_entity() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert_eq!(s.class_of(&doc, doc.root()), NodeClass::Entity);
    }

    #[test]
    fn class_of_resolves_instances() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        let product = doc.child_by_tag(doc.root(), "product").unwrap();
        assert_eq!(s.class_of(&doc, product), NodeClass::Entity);
        let name = doc.child_by_tag(product, "name").unwrap();
        assert_eq!(s.class_of(&doc, name), NodeClass::Attribute);
        let text = doc.children(name)[0];
        assert_eq!(s.class_of(&doc, text), NodeClass::Attribute);
    }

    #[test]
    fn unknown_path_defaults_to_connection() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "never/seen"), NodeClass::Connection);
    }

    #[test]
    fn repeating_leaf_stays_attribute() {
        // Repeated *leaf* tags (multi-valued attributes like keywords) are
        // attributes, not entities — they have no internal structure.
        let doc = parse_document(
            "<movies><movie><keyword>war</keyword><keyword>epic</keyword></movie></movies>",
        )
        .unwrap();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "movies/movie/keyword"), NodeClass::Attribute);
        assert!(s.repeats("movies/movie/keyword"));
    }

    #[test]
    fn single_instance_internal_node_is_connection() {
        let doc = parse_document("<a><meta><created>2009</created></meta></a>").unwrap();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "a/meta"), NodeClass::Connection);
        assert_eq!(class(&s, "a/meta/created"), NodeClass::Attribute);
    }

    #[test]
    fn repetition_anywhere_marks_all_instances() {
        // `product` repeats under the first shop only, but the path class
        // applies document-wide (summary-based inference).
        let doc = parse_document(
            "<mall><shop><product><name>a</name></product><product><name>b</name></product></shop>\
             <shop><product><name>c</name></product></shop></mall>",
        )
        .unwrap();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "mall/shop/product"), NodeClass::Entity);
        assert_eq!(class(&s, "mall/shop"), NodeClass::Entity);
    }

    #[test]
    fn mixed_leaf_and_internal_instances_lean_entity_or_connection() {
        // A tag that is sometimes internal: `extra` repeats and is internal
        // in one instance => entity.
        let doc = parse_document("<r><item><extra>plain</extra><extra><d>x</d></extra></item></r>")
            .unwrap();
        let s = StructureSummary::infer(&doc);
        assert_eq!(class(&s, "r/item/extra"), NodeClass::Entity);
    }

    #[test]
    fn summary_statistics() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        assert!(s.path_count() >= 9);
        let entities: Vec<&str> =
            s.classes().filter(|(_, c)| *c == NodeClass::Entity).map(|(p, _)| p).collect();
        assert!(entities.contains(&"shop/product"));
        assert!(entities.contains(&"shop/product/reviews/review"));
    }

    #[test]
    fn path_ids_are_shared_by_instances_of_one_path() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        let products: Vec<NodeId> = doc.children_by_tag(doc.root(), "product").collect();
        let a = s.path_id_of(products[0]).unwrap();
        let b = s.path_id_of(products[1]).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.path_display(a), "shop/product");
        assert_eq!(s.class_of_id(a), NodeClass::Entity);
        // Text runs have no path id.
        let name = doc.child_by_tag(products[0], "name").unwrap();
        assert_eq!(s.path_id_of(doc.children(name)[0]), None);
    }

    #[test]
    fn path_display_matches_path_key() {
        let doc = review_doc();
        let s = StructureSummary::infer(&doc);
        for node in doc.all_nodes() {
            if doc.is_element(node) {
                let pid = s.path_id_of(node).unwrap();
                assert_eq!(s.path_display(pid), path_key(&doc, node));
            }
        }
    }
}
