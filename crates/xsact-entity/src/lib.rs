//! Entity identification and feature extraction — the paper's *Result
//! Processor* (Figure 3).
//!
//! XSACT's comparison algorithms operate on features of the form
//! `(entity, attribute, value)` extracted from structured search results.
//! This crate provides the two modules of the result processor:
//!
//! * the **entity identifier** ([`classify`]): infers which XML nodes denote
//!   entities, attributes and connection nodes, in the spirit of the
//!   Entity-Relationship model, following the structural rules of XSeek
//!   (Liu & Chen, SIGMOD 2007 — reference \[3\] of the paper);
//! * the **feature extractor** ([`features`]): walks a result subtree and
//!   aggregates features with occurrence statistics, e.g. *"pro: compact —
//!   yes — 8 of 11 reviews (73%)"* as in Figure 1 of the paper.

pub mod classify;
pub mod features;
pub mod label;

pub use classify::{NodeClass, PathId, StructureSummary};
pub use features::{extract_features, FeatureStat, FeatureType, ResultFeatures, ValueCount};
pub use label::{display_label, prettify};
