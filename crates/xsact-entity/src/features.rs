//! The feature extractor: result subtree → aggregated feature statistics.
//!
//! A **feature** is a triplet `(entity, attribute, value)` — e.g.
//! `(review, pros:compact, yes)` — and a **feature type** is the
//! `(entity, attribute)` pair (paper §2). For each search result, the
//! extractor:
//!
//! 1. finds the *entity instances* inside the result subtree (the result
//!    root plus every descendant classified [`NodeClass::Entity`]),
//! 2. collects, per instance, the leaf values reachable without crossing
//!    into a nested entity instance (those belong to the nested entity),
//! 3. aggregates occurrences per feature type and value, together with the
//!    number of instances of each entity.
//!
//! The per-type statistics — e.g. *"pros:compact seen in 8 of 11 reviews
//! (73%)"* — drive both the validity ranking (Desideratum 2) and the
//! differentiability test (Desideratum 3) in `xsact-core`.

use crate::classify::{NodeClass, PathId, StructureSummary};
use std::collections::HashMap;
use xsact_xml::{Document, NodeId, Sym};

/// A feature type: the `(entity, attribute)` pair identifying one row of a
/// comparison table.
///
/// * `entity` is the entity's full tag path (`shop/product/reviews/review`),
///   which makes types comparable across results of the same dataset;
/// * `attribute` is the tag path from the entity instance down to the leaf,
///   joined with `:` (`pros:compact`), with XML attributes written as
///   `tag@name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeatureType {
    /// Tag path of the owning entity, from the document root.
    pub entity: String,
    /// Attribute path within the entity.
    pub attribute: String,
}

impl FeatureType {
    /// Convenience constructor.
    pub fn new(entity: impl Into<String>, attribute: impl Into<String>) -> Self {
        FeatureType { entity: entity.into(), attribute: attribute.into() }
    }
}

/// One observed value of a feature type with its occurrence count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueCount {
    /// The (whitespace-normalised) text value.
    pub value: String,
    /// How many times it occurred across the entity's instances.
    pub count: u32,
}

/// Aggregated statistics of one feature type within one result.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStat {
    /// The feature type.
    pub ty: FeatureType,
    /// Observed values, sorted by descending count then value.
    pub values: Vec<ValueCount>,
    /// Total occurrences (sum of the value counts).
    pub occurrences: u32,
    /// Number of instances of `ty.entity` in this result.
    pub entity_instances: u32,
}

impl FeatureStat {
    /// Occurrence ratio of the whole type: `occurrences / entity_instances`.
    ///
    /// The paper's "Pro:Compact occurs 8/11 = 73%". Can exceed 1.0 for
    /// multi-valued types (several occurrences per instance).
    pub fn ratio(&self) -> f64 {
        if self.entity_instances == 0 {
            0.0
        } else {
            f64::from(self.occurrences) / f64::from(self.entity_instances)
        }
    }

    /// The most frequent value (ties broken towards the lexicographically
    /// smaller value). A stat always holds at least one value.
    pub fn dominant(&self) -> &ValueCount {
        &self.values[0]
    }

    /// Occurrence ratio of one specific value; 0.0 if the value was never
    /// seen.
    pub fn value_ratio(&self, value: &str) -> f64 {
        if self.entity_instances == 0 {
            return 0.0;
        }
        self.values
            .iter()
            .find(|vc| vc.value == value)
            .map_or(0.0, |vc| f64::from(vc.count) / f64::from(self.entity_instances))
    }

    /// A Figure 1-style statistics line: `pros:compact: yes: 8`.
    pub fn stat_line(&self) -> String {
        let top = self.dominant();
        format!("{}: {}: {}", self.ty.attribute, top.value, top.count)
    }
}

/// All feature statistics of one search result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultFeatures {
    /// Human-readable label of the result (e.g. the product name).
    pub label: String,
    /// Stats per feature type, sorted by entity path, then by descending
    /// occurrence count, then attribute name — i.e. each entity's types are
    /// already in *significance order* (Desideratum 2).
    pub stats: Vec<FeatureStat>,
    /// Instances per entity path.
    entity_instances: HashMap<String, u32>,
}

impl ResultFeatures {
    /// Builds a `ResultFeatures` directly from `(type, value, count)`
    /// triplets plus entity instance counts. Used by tests, fixtures and
    /// workload generators that bypass XML extraction.
    pub fn from_raw(
        label: impl Into<String>,
        entity_instances: impl IntoIterator<Item = (String, u32)>,
        triplets: impl IntoIterator<Item = (FeatureType, String, u32)>,
    ) -> Self {
        let entity_instances: HashMap<String, u32> = entity_instances.into_iter().collect();
        let mut agg: HashMap<FeatureType, HashMap<String, u32>> = HashMap::new();
        for (ty, value, count) in triplets {
            *agg.entry(ty).or_default().entry(value).or_insert(0) += count;
        }
        let stats = finalize(agg, &entity_instances);
        ResultFeatures { label: label.into(), stats, entity_instances }
    }

    /// Number of instances of an entity path in this result.
    pub fn instances_of(&self, entity: &str) -> u32 {
        self.entity_instances.get(entity).copied().unwrap_or(0)
    }

    /// Looks up the stat of a feature type.
    pub fn get(&self, ty: &FeatureType) -> Option<&FeatureStat> {
        self.stats.iter().find(|s| &s.ty == ty)
    }

    /// Total number of feature types in the result (the paper's `m`).
    pub fn type_count(&self) -> usize {
        self.stats.len()
    }

    /// Groups the stats by entity, preserving significance order within each
    /// entity. Entities appear in lexicographic path order.
    pub fn by_entity(&self) -> Vec<(&str, Vec<&FeatureStat>)> {
        let mut out: Vec<(&str, Vec<&FeatureStat>)> = Vec::new();
        for stat in &self.stats {
            match out.last_mut() {
                Some((entity, group)) if *entity == stat.ty.entity => group.push(stat),
                _ => out.push((stat.ty.entity.as_str(), vec![stat])),
            }
        }
        out
    }

    /// The Figure 1-style statistics panel: `# of <entity>: <n>` lines plus
    /// the top-`k` feature lines per entity.
    pub fn stat_panel(&self, top_k: usize) -> Vec<String> {
        let mut lines = Vec::new();
        for (entity, stats) in self.by_entity() {
            let short = crate::label::entity_short_name(entity);
            lines.push(format!("# of {short}s: {}", self.instances_of(entity)));
            for stat in stats.iter().take(top_k) {
                lines.push(stat.stat_line());
            }
        }
        lines
    }
}

/// One segment of an attribute path during the symbol-keyed walk. Tags and
/// XML-attribute names are interned in the document, so a segment is one or
/// two 4-byte symbols — cloning a path is a flat memcpy, and no strings are
/// built until the stats are finalised at the `xsact-core` boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Seg {
    /// A child element step (`pros`).
    Tag(Sym),
    /// An XML attribute on the instance itself (`@sku`).
    RootAttr(Sym),
    /// An XML attribute on a nested element (`best_use@lang`).
    TagAttr(Sym, Sym),
}

impl Seg {
    fn render(self, doc: &Document, out: &mut String) {
        let symbols = doc.interner();
        match self {
            Seg::Tag(tag) => out.push_str(symbols.resolve(tag)),
            Seg::RootAttr(name) => {
                out.push('@');
                out.push_str(symbols.resolve(name));
            }
            Seg::TagAttr(tag, name) => {
                out.push_str(symbols.resolve(tag));
                out.push('@');
                out.push_str(symbols.resolve(name));
            }
        }
    }
}

/// The symbol-keyed identity of a feature type during aggregation: the
/// owning entity's interned path plus the attribute path as segments.
type SymKey = (PathId, Box<[Seg]>);

/// Extracts the aggregated features of the result subtree rooted at `root`.
///
/// `summary` must have been inferred from the same document so entity
/// classification is consistent across all results.
///
/// Aggregation is keyed entirely by interned symbols ([`PathId`] +
/// [`Sym`] segments); the string-typed [`FeatureType`]s that `xsact-core`
/// consumes are resolved **once per distinct feature type** when the stats
/// are finalised, never per node or per comparison.
pub fn extract_features(
    doc: &Document,
    summary: &StructureSummary,
    root: NodeId,
    label: impl Into<String>,
) -> ResultFeatures {
    // Pass 1: find entity instances inside the subtree. The result root is
    // an instance regardless of its class — it is the object being compared.
    let mut instances: Vec<NodeId> = Vec::new();
    for node in doc.descendants(root) {
        if node == root
            || (doc.is_element(node) && summary.class_of(doc, node) == NodeClass::Entity)
        {
            instances.push(node);
        }
    }

    let mut instance_counts: HashMap<PathId, u32> = HashMap::new();
    let mut agg: HashMap<SymKey, HashMap<String, u32>> = HashMap::new();

    for &instance in &instances {
        // A text-node root (degenerate but allowed by the seed API) takes
        // its parent element's path, mirroring `Document::tag_path`.
        let Some(entity) = instance_path(doc, summary, instance) else { continue };
        *instance_counts.entry(entity).or_insert(0) += 1;
        collect_instance_features(doc, summary, instance, entity, &mut agg);
    }

    // Resolve symbols to the string-typed boundary representation. Distinct
    // symbol keys can render to the same string only if a tag contained the
    // join characters — XML names cannot — but merge defensively anyway.
    let mut entity_instances: HashMap<String, u32> = HashMap::with_capacity(instance_counts.len());
    for (&pid, &n) in &instance_counts {
        *entity_instances.entry(summary.path_display(pid).to_owned()).or_insert(0) += n;
    }
    let mut resolved: HashMap<FeatureType, HashMap<String, u32>> =
        HashMap::with_capacity(agg.len());
    for ((entity, segs), values) in agg {
        let mut attribute = String::new();
        for (i, seg) in segs.iter().enumerate() {
            if i > 0 {
                attribute.push(':');
            }
            seg.render(doc, &mut attribute);
        }
        let ty = FeatureType::new(summary.path_display(entity), attribute);
        let merged = resolved.entry(ty).or_default();
        for (value, count) in values {
            *merged.entry(value).or_insert(0) += count;
        }
    }

    let stats = finalize(resolved, &entity_instances);
    ResultFeatures { label: label.into(), stats, entity_instances }
}

/// The interned path of an instance node: its own path for elements, the
/// nearest ancestor element's path for text runs. `None` only for handles
/// outside the summarised document.
fn instance_path(doc: &Document, summary: &StructureSummary, node: NodeId) -> Option<PathId> {
    let mut cur = Some(node);
    while let Some(n) = cur {
        if let Some(pid) = summary.path_id_of(n) {
            return Some(pid);
        }
        cur = doc.parent(n);
    }
    None
}

/// Collects `(attribute, value)` pairs of one entity instance, stopping at
/// nested entity instances.
fn collect_instance_features(
    doc: &Document,
    summary: &StructureSummary,
    instance: NodeId,
    entity: PathId,
    agg: &mut HashMap<SymKey, HashMap<String, u32>>,
) {
    // Depth-first walk carrying the attribute path relative to the instance.
    let mut stack: Vec<(NodeId, Vec<Seg>)> = vec![(instance, Vec::new())];
    while let Some((node, attr_path)) = stack.pop() {
        // XML attributes become features at every element we own.
        for (name, value) in doc.attrs_syms(node) {
            let mut segs = attr_path.clone();
            let leaf_seg = match segs.pop() {
                // Attach to the current element segment: `tag@name`.
                Some(Seg::Tag(tag)) => Seg::TagAttr(tag, name),
                Some(other) => unreachable!("attr path ends in a tag segment, got {other:?}"),
                None => Seg::RootAttr(name),
            };
            segs.push(leaf_seg);
            record(agg, entity, &segs, value);
        }
        if doc.is_leaf_element(node) && node != instance {
            let text = normalize_value(&doc.text_content(node));
            if !text.is_empty() {
                record(agg, entity, &attr_path, &text);
            }
            continue;
        }
        for child in doc.child_elements(node) {
            // Nested entity instances keep their own features.
            if summary.class_of(doc, child) == NodeClass::Entity {
                continue;
            }
            let mut child_path = attr_path.clone();
            child_path.push(Seg::Tag(doc.tag_sym(child).expect("element child")));
            stack.push((child, child_path));
        }
    }
}

fn record(
    agg: &mut HashMap<SymKey, HashMap<String, u32>>,
    entity: PathId,
    attr_segments: &[Seg],
    value: &str,
) {
    if attr_segments.is_empty() {
        return;
    }
    let key = (entity, attr_segments.to_vec().into_boxed_slice());
    *agg.entry(key).or_default().entry(value.to_owned()).or_insert(0) += 1;
}

/// Collapses runs of whitespace and trims, so `" 4.2\n "` equals `"4.2"`.
fn normalize_value(raw: &str) -> String {
    raw.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn finalize(
    agg: HashMap<FeatureType, HashMap<String, u32>>,
    entity_instances: &HashMap<String, u32>,
) -> Vec<FeatureStat> {
    let mut stats: Vec<FeatureStat> = agg
        .into_iter()
        .map(|(ty, values)| {
            let mut values: Vec<ValueCount> =
                values.into_iter().map(|(value, count)| ValueCount { value, count }).collect();
            values.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.value.cmp(&b.value)));
            let occurrences = values.iter().map(|v| v.count).sum();
            let entity_instances = entity_instances.get(&ty.entity).copied().unwrap_or(0);
            FeatureStat { ty, values, occurrences, entity_instances }
        })
        .collect();
    // Entity path asc; within an entity: occurrences desc, attribute asc —
    // the significance order required by Desideratum 2.
    stats.sort_by(|a, b| {
        a.ty.entity
            .cmp(&b.ty.entity)
            .then_with(|| b.occurrences.cmp(&a.occurrences))
            .then_with(|| a.ty.attribute.cmp(&b.ty.attribute))
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsact_xml::parse_document;

    /// Two products shaped like the paper's Figure 1 (scaled down).
    fn doc() -> Document {
        parse_document(
            "<shop>\
               <product>\
                 <name>TomTom Go 630</name>\
                 <rating>4.2</rating>\
                 <reviews>\
                   <review><pros><compact>yes</compact><easy_to_read>yes</easy_to_read></pros>\
                      <uses><best_use><auto>yes</auto></best_use></uses></review>\
                   <review><pros><compact>yes</compact><easy_to_read>yes</easy_to_read></pros></review>\
                   <review><pros><easy_to_read>yes</easy_to_read></pros></review>\
                 </reviews>\
               </product>\
               <product>\
                 <name>TomTom Go 730</name>\
                 <rating>4.1</rating>\
                 <reviews>\
                   <review><pros><compact>yes</compact></pros></review>\
                   <review><pros><satellites>yes</satellites></pros></review>\
                 </reviews>\
               </product>\
             </shop>",
        )
        .unwrap()
    }

    fn first_product(doc: &Document) -> NodeId {
        doc.child_by_tag(doc.root(), "product").unwrap()
    }

    fn extract(d: &Document, root: NodeId) -> ResultFeatures {
        let summary = StructureSummary::infer(d);
        extract_features(d, &summary, root, "r")
    }

    const REVIEW: &str = "shop/product/reviews/review";
    const PRODUCT: &str = "shop/product";

    #[test]
    fn entity_instances_counted() {
        let d = doc();
        let rf = extract(&d, first_product(&d));
        assert_eq!(rf.instances_of(PRODUCT), 1);
        assert_eq!(rf.instances_of(REVIEW), 3);
        assert_eq!(rf.instances_of("never"), 0);
    }

    #[test]
    fn product_attributes_extracted() {
        let d = doc();
        let rf = extract(&d, first_product(&d));
        let name = rf.get(&FeatureType::new(PRODUCT, "name")).unwrap();
        assert_eq!(name.dominant().value, "TomTom Go 630");
        assert_eq!(name.occurrences, 1);
        assert_eq!(name.entity_instances, 1);
        assert!((name.ratio() - 1.0).abs() < 1e-12);
        let rating = rf.get(&FeatureType::new(PRODUCT, "rating")).unwrap();
        assert_eq!(rating.dominant().value, "4.2");
    }

    #[test]
    fn review_features_aggregate_over_instances() {
        let d = doc();
        let rf = extract(&d, first_product(&d));
        let compact = rf.get(&FeatureType::new(REVIEW, "pros:compact")).unwrap();
        assert_eq!(compact.occurrences, 2);
        assert_eq!(compact.entity_instances, 3);
        assert!((compact.ratio() - 2.0 / 3.0).abs() < 1e-12);
        let easy = rf.get(&FeatureType::new(REVIEW, "pros:easy_to_read")).unwrap();
        assert_eq!(easy.occurrences, 3);
        let auto = rf.get(&FeatureType::new(REVIEW, "uses:best_use:auto")).unwrap();
        assert_eq!(auto.occurrences, 1);
    }

    #[test]
    fn nested_entities_do_not_leak_into_parent() {
        let d = doc();
        let rf = extract(&d, first_product(&d));
        // The product entity must not own review-level leaves.
        assert!(rf
            .stats
            .iter()
            .filter(|s| s.ty.entity == PRODUCT)
            .all(|s| !s.ty.attribute.contains("compact")));
    }

    #[test]
    fn significance_order_within_entity() {
        let d = doc();
        let rf = extract(&d, first_product(&d));
        let review_stats: Vec<&FeatureStat> =
            rf.stats.iter().filter(|s| s.ty.entity == REVIEW).collect();
        // easy_to_read (3) before compact (2) before auto (1).
        let attrs: Vec<&str> = review_stats.iter().map(|s| s.ty.attribute.as_str()).collect();
        assert_eq!(attrs, ["pros:easy_to_read", "pros:compact", "uses:best_use:auto"]);
        let counts: Vec<u32> = review_stats.iter().map(|s| s.occurrences).collect();
        assert_eq!(counts, [3, 2, 1]);
    }

    #[test]
    fn by_entity_groups_contiguously() {
        let d = doc();
        let rf = extract(&d, first_product(&d));
        let groups = rf.by_entity();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, PRODUCT);
        assert_eq!(groups[1].0, REVIEW);
    }

    #[test]
    fn value_ratio_handles_missing_values() {
        let d = doc();
        let rf = extract(&d, first_product(&d));
        let compact = rf.get(&FeatureType::new(REVIEW, "pros:compact")).unwrap();
        assert!((compact.value_ratio("yes") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(compact.value_ratio("no"), 0.0);
    }

    #[test]
    fn multi_valued_types_keep_histogram() {
        let d = parse_document(
            "<movies><movie><title>Alpha</title>\
             <keyword>war</keyword><keyword>war</keyword><keyword>epic</keyword></movie>\
             <movie><title>Beta</title></movie></movies>",
        )
        .unwrap();
        let summary = StructureSummary::infer(&d);
        let movie = d.child_by_tag(d.root(), "movie").unwrap();
        let rf = extract_features(&d, &summary, movie, "m");
        let kw = rf.get(&FeatureType::new("movies/movie", "keyword")).unwrap();
        assert_eq!(kw.occurrences, 3);
        assert_eq!(kw.values.len(), 2);
        assert_eq!(kw.dominant(), &ValueCount { value: "war".into(), count: 2 });
        assert!(kw.ratio() > 1.0);
    }

    #[test]
    fn xml_attributes_become_features() {
        let d = parse_document(
            r#"<shop><product sku="A1"><name>X</name></product><product sku="B2"><name>Y</name></product></shop>"#,
        )
        .unwrap();
        let summary = StructureSummary::infer(&d);
        let p = d.child_by_tag(d.root(), "product").unwrap();
        let rf = extract_features(&d, &summary, p, "p");
        let sku = rf.get(&FeatureType::new("shop/product", "@sku")).unwrap();
        assert_eq!(sku.dominant().value, "A1");
    }

    #[test]
    fn whitespace_in_values_normalised() {
        let d = parse_document(
            "<r><item><name>  Tom   Tom\n 630 </name></item><item><name>b</name></item></r>",
        )
        .unwrap();
        let summary = StructureSummary::infer(&d);
        let item = d.child_by_tag(d.root(), "item").unwrap();
        let rf = extract_features(&d, &summary, item, "i");
        let name = rf.get(&FeatureType::new("r/item", "name")).unwrap();
        assert_eq!(name.dominant().value, "Tom Tom 630");
    }

    #[test]
    fn stat_panel_matches_figure1_shape() {
        let d = doc();
        let rf = extract(&d, first_product(&d));
        let panel = rf.stat_panel(2);
        assert!(panel.iter().any(|l| l == "# of reviews: 3"));
        assert!(panel.iter().any(|l| l == "pros:easy_to_read: yes: 3"));
        assert!(panel.iter().any(|l| l == "# of products: 1"));
    }

    #[test]
    fn from_raw_builds_equivalent_stats() {
        let rf = ResultFeatures::from_raw(
            "raw",
            [("e".to_string(), 10)],
            [
                (FeatureType::new("e", "a"), "yes".to_string(), 7),
                (FeatureType::new("e", "a"), "no".to_string(), 2),
                (FeatureType::new("e", "b"), "x".to_string(), 5),
            ],
        );
        assert_eq!(rf.type_count(), 2);
        let a = rf.get(&FeatureType::new("e", "a")).unwrap();
        assert_eq!(a.occurrences, 9);
        assert_eq!(a.dominant().value, "yes");
        assert_eq!(a.entity_instances, 10);
        // Significance order: a (9) before b (5).
        assert_eq!(rf.stats[0].ty.attribute, "a");
    }

    #[test]
    fn text_node_root_is_degenerate_but_defined() {
        // The seed API tolerated a text-node result root (it has no
        // features of its own); the interned path must fall back to the
        // parent element instead of panicking.
        let d = parse_document("<r><item><name>A</name></item><item><name>B</name></item></r>")
            .unwrap();
        let summary = StructureSummary::infer(&d);
        let name = d.child_by_tag(d.child_by_tag(d.root(), "item").unwrap(), "name").unwrap();
        let text = d.children(name)[0];
        let rf = extract_features(&d, &summary, text, "t");
        assert_eq!(rf.type_count(), 0);
        // The instance is counted under the nearest element's path.
        assert_eq!(rf.instances_of("r/item/name"), 1);
    }

    #[test]
    fn empty_result_has_no_stats() {
        let d = parse_document("<r><item/><item/></r>").unwrap();
        let summary = StructureSummary::infer(&d);
        let item = d.child_by_tag(d.root(), "item").unwrap();
        let rf = extract_features(&d, &summary, item, "i");
        assert_eq!(rf.type_count(), 0);
        assert_eq!(rf.by_entity().len(), 0);
        // The instance itself is still counted.
        assert_eq!(rf.instances_of("r/item"), 1);
    }
}
