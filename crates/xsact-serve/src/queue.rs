//! The bounded submission queue: admission control made explicit.
//!
//! A serving runtime under overload has exactly three options: queue
//! without bound (latency grows until every caller times out), block the
//! submitter (the overload spreads backwards into the callers), or
//! **reject with a typed error** so the caller can back off. This queue
//! implements the third: [`SubmissionQueue::push`] never blocks — when the
//! queue is at capacity it returns [`Rejected::Full`] carrying the depth
//! the caller collided with.
//!
//! Shutdown is a *drain*, not an abort: [`SubmissionQueue::close`] turns
//! new submissions away ([`Rejected::Closed`]) but [`SubmissionQueue::pop`]
//! keeps handing out queued work until the queue is empty, and only then
//! reports the end (`None`). Work that was admitted is work that gets
//! answered.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was turned away at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The queue is at capacity: `depth` submissions are already waiting.
    Full {
        /// Queue depth at rejection time (= the configured capacity).
        depth: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The queue was closed (server shutting down); no new work is
    /// admitted, queued work is still drained.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer queue with non-blocking, typed admission and
/// drain-on-close semantics. See the module docs.
pub struct SubmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> SubmissionQueue<T> {
    /// A queue admitting at most `capacity` waiting submissions. Zero is a
    /// valid capacity: every push is rejected — useful as a deterministic
    /// "always overloaded" server in tests.
    pub fn new(capacity: usize) -> SubmissionQueue<T> {
        SubmissionQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Submissions currently waiting.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }

    /// Admits `item`, or rejects it without blocking. A rejected item is
    /// dropped — the caller learns synchronously and still owns the means
    /// to retry (rebuilding a submission is cheap; blocking a caller under
    /// overload is not).
    pub fn push(&self, item: T) -> Result<(), Rejected> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(Rejected::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(Rejected::Full { depth: state.items.len(), capacity: self.capacity });
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a submission is available and returns it; returns
    /// `None` only when the queue is closed **and** drained — every
    /// admitted submission is handed out exactly once before the end.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock poisoned");
        }
    }

    /// Takes every submission currently waiting, up to `max`, without
    /// blocking — the batcher's "who else is already in line?" question.
    pub fn drain_pending(&self, max: usize) -> Vec<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        let n = state.items.len().min(max);
        state.items.drain(..n).collect()
    }

    /// Closes the queue: future pushes fail with [`Rejected::Closed`],
    /// waiting poppers are woken, queued submissions keep draining.
    /// Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_fifo() {
        let q = SubmissionQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.depth(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_rejects_with_depth_and_capacity() {
        let q = SubmissionQueue::new(2);
        q.push('a').unwrap();
        q.push('b').unwrap();
        assert_eq!(q.push('c'), Err(Rejected::Full { depth: 2, capacity: 2 }));
        // Draining one slot re-admits.
        assert_eq!(q.pop(), Some('a'));
        q.push('c').unwrap();
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let q = SubmissionQueue::new(0);
        assert_eq!(q.push(1), Err(Rejected::Full { depth: 0, capacity: 0 }));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = SubmissionQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(Rejected::Closed));
        // Admitted work still drains, in order, before the end marker.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queue stays ended");
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(SubmissionQueue::<u32>::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the popper a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn drain_pending_takes_at_most_max_without_blocking() {
        let q = SubmissionQueue::new(8);
        assert!(q.drain_pending(4).is_empty(), "empty drain must not block");
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.drain_pending(3), vec![0, 1, 2]);
        assert_eq!(q.drain_pending(usize::MAX), vec![3, 4]);
    }

    #[test]
    fn concurrent_pushers_and_poppers_lose_nothing() {
        const PER_THREAD: usize = 200;
        const PUSHERS: usize = 4;
        let q = Arc::new(SubmissionQueue::new(PUSHERS * PER_THREAD));
        let mut handles = Vec::new();
        for t in 0..PUSHERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    q.push(t * PER_THREAD + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut seen = Vec::new();
        while let Some(x) = q.pop() {
            seen.push(x);
        }
        seen.sort();
        assert_eq!(seen, (0..PUSHERS * PER_THREAD).collect::<Vec<_>>());
    }
}
