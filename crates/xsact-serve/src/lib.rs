//! Serving-runtime primitives for the XSACT corpus engine.
//!
//! The corpus engine (PR 2–5) executes one query at a time: every
//! `CorpusQuery` spins up scoped threads, runs, and tears them down. A
//! *service* has concurrent callers, and those need machinery the engine
//! deliberately does not know about: a bounded submission queue with
//! admission control, batching of queries that share terms, per-session
//! budgets, and counters that describe the server rather than a single
//! query.
//!
//! This crate holds that machinery's *mechanics*, free of any XSACT
//! engine type (its only dependency is the observability layer
//! `xsact-obs`, mirroring how `xsact-corpus` stays engine-free), so every
//! piece is independently testable:
//!
//! * [`SubmissionQueue`] — a bounded MPMC queue whose `push` **rejects**
//!   instead of blocking (admission control is backpressure made visible
//!   to the caller), and whose `close` drains: queued work is still
//!   handed out after a close, new work is turned away.
//! * [`coalesce`] — groups pending submissions by key so one execution
//!   can serve every concurrent caller that asked the same question.
//! * [`ServeCounters`] — server-level metrics backed by an `xsact-obs`
//!   registry: queries served, batches formed, batch-size and latency
//!   histograms (queue wait, batch formation, execute, reply write,
//!   end-to-end), typed rejection counts, and the executor work
//!   aggregated over every batch — all scrapeable as one Prometheus-style
//!   exposition.
//! * [`PageCache`] — the bounded LRU result-page cache (entry and byte
//!   bounds, generation-based invalidation) the facade checks before a
//!   query ever reaches the queue. Caching never changes bytes; a
//!   generation mismatch rejects the insert (the anti-poison guard).
//! * [`protocol`] — the newline-delimited request/response framing the
//!   TCP front end speaks (`QUERY …`, `TOP k`, `STATS`, `METRICS`,
//!   `QUIT`, `SHUTDOWN`; every response ends with a lone `.` line).
//! * [`mux`] — readiness multiplexing for the TCP front end: a
//!   dependency-free `poll(2)` wrapper (scalar fallback off Unix) and
//!   incremental [`LineBuffer`] framing that matches `BufRead::lines`
//!   byte for byte, so one thread can serve every connection
//!   wire-identically to thread-per-connection.
//! * [`fault`] — deterministic fault injection: a [`FaultPlan`] arms
//!   named sites (`shard_panic`, `slow_execute`, `io_error_on_save`,
//!   `drop_connection`) that fire on exact hit counts, so the chaos suite
//!   can pin recovery byte-identical to a fault-free run. Disarmed (the
//!   production default) a site check is a single branch.
//!
//! The `xsact` facade's `serve` module composes these with the corpus and
//! `xsact-corpus`'s persistent `ShardPool` into the actual server; see
//! `src/serve.rs` in the facade crate.

pub mod batch;
pub mod cache;
pub mod fault;
pub mod mux;
pub mod protocol;
pub mod queue;
pub mod stats;

pub use batch::coalesce;
pub use cache::{Inserted, PageCache};
pub use fault::FaultPlan;
pub use mux::LineBuffer;
pub use protocol::{err_line, Request, END_MARKER};
pub use queue::{Rejected, SubmissionQueue};
pub use stats::{ServeCounters, ServeSnapshot};
