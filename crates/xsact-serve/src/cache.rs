//! The bounded result-page cache: LRU over rendered query answers.
//!
//! Serving workloads repeat themselves — the same canonical query at the
//! same top-k, over and over — and re-executing a deterministic search
//! against an immutable corpus buys nothing. This module provides the
//! engine-free half of the fix: a [`PageCache`] keyed on
//! `(canonical query, k)`, bounded by an entry count *and* an approximate
//! byte budget, with least-recently-used eviction. The facade stores its
//! `QueryAnswer`s in it and checks it before a query ever reaches the
//! submission queue, so a hit skips the queue **and** the shard pool.
//!
//! ## Caching never changes bytes
//!
//! The cache stores the *answer the executor produced* and returns it
//! verbatim; the serving invariant ("a cached answer is byte-identical to
//! a fresh one") holds because the corpus is immutable and the executor
//! is deterministic. The generation counter is the forward-compatibility
//! hook for the day that stops being true: [`PageCache::invalidate_all`]
//! bumps the generation and flash-clears the map, and an insert carrying
//! a stale generation — a lookup-miss that executed across an
//! invalidation — is **rejected**, never stored. The `cache_poison`
//! fault-injection site drives exactly that race in the chaos suite.
//!
//! ## What is never cached
//!
//! Only successful answers are inserted (the facade inserts on the Ok
//! path after the shard merge), so a `ShardFailed`, a deadline rejection,
//! or any other error can never be replayed from the cache.

/// Internal LRU stamp: a monotonically increasing tick per touch.
type Tick = u64;

/// One cached page.
#[derive(Debug)]
struct Entry<V> {
    query: String,
    k: usize,
    value: V,
    bytes: usize,
    touched: Tick,
}

/// Outcome of [`PageCache::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inserted {
    /// Stored; `evicted` entries were dropped to make room.
    Stored { evicted: u64 },
    /// Rejected: the insert's generation is not the cache's current one
    /// (an invalidation happened between lookup and insert). Nothing was
    /// stored — the anti-poison guard.
    StaleGeneration,
    /// Rejected: one entry alone exceeds the byte budget (caching it
    /// would immediately evict everything for a page unlikely to repay
    /// the space).
    TooLarge,
}

/// A bounded LRU result-page cache; see the module docs. Not internally
/// synchronised — the facade wraps it in a `Mutex` (lookups and inserts
/// are a handful of integer compares next to a search).
#[derive(Debug)]
pub struct PageCache<V> {
    entries: Vec<Entry<V>>,
    max_entries: usize,
    /// Approximate byte budget over the stored values; 0 = unbounded.
    max_bytes: usize,
    bytes: usize,
    tick: Tick,
    generation: u64,
}

impl<V: Clone> PageCache<V> {
    /// A cache holding at most `max_entries` pages and (approximately)
    /// `max_bytes` bytes; `max_bytes` 0 disables the byte bound.
    /// `max_entries` must be nonzero — a zero-entry cache is spelled
    /// "no cache" by the caller.
    pub fn new(max_entries: usize, max_bytes: usize) -> PageCache<V> {
        assert!(max_entries > 0, "a zero-entry cache is spelled None");
        PageCache { entries: Vec::new(), max_entries, max_bytes, bytes: 0, tick: 0, generation: 0 }
    }

    /// The current generation; captured at lookup time and passed back to
    /// [`insert`](Self::insert) so an answer computed across an
    /// invalidation is rejected.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cached pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Looks up `(query, k)`, refreshing its recency on a hit.
    pub fn lookup(&mut self, query: &str, k: usize) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.iter_mut().find(|e| e.k == k && e.query == query)?;
        entry.touched = tick;
        Some(entry.value.clone())
    }

    /// Inserts `(query, k) → value` if `generation` is still current,
    /// evicting least-recently-used pages until both bounds hold. An
    /// existing entry under the same key is replaced (its recency
    /// refreshed) — the value cannot differ while the corpus is
    /// immutable, and replacing is the correct behaviour when it can.
    pub fn insert(
        &mut self,
        generation: u64,
        query: &str,
        k: usize,
        value: V,
        bytes: usize,
    ) -> Inserted {
        if generation != self.generation {
            return Inserted::StaleGeneration;
        }
        if self.max_bytes > 0 && bytes > self.max_bytes {
            return Inserted::TooLarge;
        }
        self.tick += 1;
        if let Some(pos) = self.entries.iter().position(|e| e.k == k && e.query == query) {
            self.bytes = self.bytes - self.entries[pos].bytes + bytes;
            let entry = &mut self.entries[pos];
            entry.value = value;
            entry.bytes = bytes;
            entry.touched = self.tick;
            return Inserted::Stored { evicted: self.evict_to_bounds() };
        }
        self.entries.push(Entry { query: query.to_owned(), k, value, bytes, touched: self.tick });
        self.bytes += bytes;
        Inserted::Stored { evicted: self.evict_to_bounds() }
    }

    /// Flash-clears the cache and bumps the generation, so in-flight
    /// inserts that looked up before the clear are rejected. The hook the
    /// future mutable corpus calls on every write.
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
        self.bytes = 0;
        self.generation += 1;
    }

    /// Evicts least-recently-used entries until both bounds hold;
    /// returns how many were dropped. The newest entry always survives
    /// (inserts over the byte budget are rejected up front).
    fn evict_to_bounds(&mut self) -> u64 {
        let mut evicted = 0;
        while self.entries.len() > self.max_entries
            || (self.max_bytes > 0 && self.bytes > self.max_bytes && self.entries.len() > 1)
        {
            let (pos, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.touched)
                .expect("loop guard guarantees entries");
            self.bytes -= self.entries[pos].bytes;
            self.entries.swap_remove(pos);
            evicted += 1;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_hits_what_insert_stored() {
        let mut cache: PageCache<&'static str> = PageCache::new(4, 0);
        let generation = cache.generation();
        assert_eq!(cache.lookup("drama family", 4), None);
        assert_eq!(
            cache.insert(generation, "drama family", 4, "page", 100),
            Inserted::Stored { evicted: 0 }
        );
        assert_eq!(cache.lookup("drama family", 4), Some("page"));
        assert_eq!(cache.lookup("drama family", 2), None, "k is part of the key");
        assert_eq!(cache.lookup("drama", 4), None);
        assert_eq!((cache.len(), cache.bytes()), (1, 100));
    }

    #[test]
    fn entry_bound_evicts_least_recently_used() {
        let mut cache: PageCache<u32> = PageCache::new(2, 0);
        let generation = cache.generation();
        cache.insert(generation, "a", 1, 10, 1);
        cache.insert(generation, "b", 1, 20, 1);
        // Touch "a" so "b" is the LRU when "c" arrives.
        assert_eq!(cache.lookup("a", 1), Some(10));
        assert_eq!(cache.insert(generation, "c", 1, 30, 1), Inserted::Stored { evicted: 1 });
        assert_eq!(cache.lookup("b", 1), None, "LRU entry evicted");
        assert_eq!(cache.lookup("a", 1), Some(10));
        assert_eq!(cache.lookup("c", 1), Some(30));
    }

    #[test]
    fn byte_bound_evicts_and_oversized_pages_are_rejected() {
        let mut cache: PageCache<u32> = PageCache::new(100, 1000);
        let generation = cache.generation();
        cache.insert(generation, "a", 1, 1, 600);
        cache.insert(generation, "b", 1, 2, 300);
        assert_eq!(cache.insert(generation, "c", 1, 3, 500), Inserted::Stored { evicted: 1 });
        assert!(cache.bytes() <= 1000, "{}", cache.bytes());
        assert_eq!(cache.lookup("a", 1), None, "oldest entry paid for the bytes");
        assert_eq!(cache.insert(generation, "huge", 1, 4, 2000), Inserted::TooLarge);
        assert_eq!(cache.lookup("huge", 1), None);
    }

    #[test]
    fn stale_generation_inserts_are_rejected() {
        let mut cache: PageCache<u32> = PageCache::new(4, 0);
        let before = cache.generation();
        cache.insert(before, "a", 1, 10, 1);
        cache.invalidate_all();
        assert_eq!(cache.lookup("a", 1), None, "invalidation flash-clears");
        assert_eq!(
            cache.insert(before, "a", 1, 10, 1),
            Inserted::StaleGeneration,
            "an insert from before the invalidation must never land"
        );
        assert!(cache.is_empty());
        let current = cache.generation();
        assert_eq!(current, before + 1);
        assert_eq!(cache.insert(current, "a", 1, 11, 1), Inserted::Stored { evicted: 0 });
        assert_eq!(cache.lookup("a", 1), Some(11));
    }

    #[test]
    fn reinsert_replaces_and_reaccounts_bytes() {
        let mut cache: PageCache<u32> = PageCache::new(4, 0);
        let generation = cache.generation();
        cache.insert(generation, "a", 1, 10, 100);
        cache.insert(generation, "a", 1, 10, 40);
        assert_eq!((cache.len(), cache.bytes()), (1, 40));
    }
}
