//! Readiness multiplexing for the TCP front end: a dependency-free
//! `poll(2)` wrapper plus incremental line-protocol framing.
//!
//! The thread-per-connection front end spends one OS thread per client —
//! fine for tens of connections, a ceiling for thousands. The mux front
//! end replaces it with **one** thread running a readiness loop over
//! nonblocking sockets. This module provides the two engine-free pieces
//! that loop needs:
//!
//! * [`poll`] — a thin FFI wrapper over the platform's `poll(2)` (no
//!   `libc` crate; the workspace carries zero external dependencies). On
//!   non-Unix platforms a scalar `select`-style fallback takes over:
//!   after a short sleep it conservatively reports every registered
//!   interest as ready. That is *correct* (level-triggered readiness is
//!   only ever a hint; all I/O on the loop handles `WouldBlock`) just not
//!   as efficient — the same contract an eventfd-less `select` loop has.
//! * [`LineBuffer`] — incremental framing: bytes arrive in whatever
//!   chunks the kernel delivers, complete lines come out. Mirrors
//!   `BufRead::lines` exactly (trailing `\r` stripped, UTF-8 required) so
//!   the mux front end is wire-identical to the threaded one — the serve
//!   smoke script diffs both against the *same* golden.

use std::io;
use std::time::Duration;

/// Interest / readiness: the caller wants to read.
pub const INTEREST_READ: u8 = 0b01;
/// Interest / readiness: the caller wants to write.
pub const INTEREST_WRITE: u8 = 0b10;

/// One registered descriptor: interest in, readiness out.
#[derive(Debug, Clone, Copy)]
pub struct PollEntry {
    /// Raw file descriptor (`as_raw_fd()` on Unix; ignored by the
    /// fallback poller).
    pub fd: i32,
    /// Bitmask of `INTEREST_*` the caller wants readiness for.
    pub interest: u8,
    /// Readiness reported by the last [`poll`] call (bitmask of
    /// `INTEREST_*`).
    pub ready: u8,
    /// The peer hung up or the descriptor errored — read to observe the
    /// EOF/error, then drop the connection.
    pub hangup: bool,
}

impl PollEntry {
    /// An entry watching `fd` for `interest`.
    pub fn new(fd: i32, interest: u8) -> PollEntry {
        PollEntry { fd, interest, ready: 0, hangup: false }
    }

    /// Whether the last poll reported the read interest ready.
    pub fn readable(&self) -> bool {
        self.ready & INTEREST_READ != 0
    }

    /// Whether the last poll reported the write interest ready.
    pub fn writable(&self) -> bool {
        self.ready & INTEREST_WRITE != 0
    }
}

#[cfg(unix)]
mod sys {
    //! The real `poll(2)`, reached by direct FFI: `pollfd` is three
    //! integers with a layout fixed by POSIX, so no `libc` crate is
    //! needed to call it.

    use super::{PollEntry, INTEREST_READ, INTEREST_WRITE};
    use std::io;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
    }

    pub fn poll_impl(entries: &mut [PollEntry], timeout: Option<Duration>) -> io::Result<usize> {
        let mut fds: Vec<PollFd> = entries
            .iter()
            .map(|e| {
                let mut events = 0i16;
                if e.interest & INTEREST_READ != 0 {
                    events |= POLLIN;
                }
                if e.interest & INTEREST_WRITE != 0 {
                    events |= POLLOUT;
                }
                PollFd { fd: e.fd, events, revents: 0 }
            })
            .collect();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => t.as_millis().try_into().unwrap_or(i32::MAX),
        };
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as core::ffi::c_ulong, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                // EINTR: report "nothing ready"; the loop re-polls.
                for entry in entries.iter_mut() {
                    entry.ready = 0;
                    entry.hangup = false;
                }
                return Ok(0);
            }
            return Err(err);
        }
        let mut ready = 0;
        for (entry, fd) in entries.iter_mut().zip(&fds) {
            entry.ready = 0;
            if fd.revents & POLLIN != 0 {
                entry.ready |= INTEREST_READ;
            }
            if fd.revents & POLLOUT != 0 {
                entry.ready |= INTEREST_WRITE;
            }
            entry.hangup = fd.revents & (POLLERR | POLLHUP) != 0;
            if entry.hangup {
                // A hangup is observed by reading (EOF) — surface it as
                // read readiness so the loop's read path runs.
                entry.ready |= INTEREST_READ;
            }
            if entry.ready != 0 || entry.hangup {
                ready += 1;
            }
        }
        Ok(ready)
    }
}

/// Scalar fallback poller: sleep briefly, then conservatively report
/// every registered interest as ready. Level-triggered readiness is a
/// hint — every consumer on the loop tolerates `WouldBlock` — so this is
/// correct on any platform, merely busier. Also used by unit tests to pin
/// the loop's WouldBlock-tolerance.
pub fn poll_fallback(entries: &mut [PollEntry], timeout: Option<Duration>) -> io::Result<usize> {
    let nap = timeout.unwrap_or(Duration::from_millis(5)).min(Duration::from_millis(5));
    if !nap.is_zero() {
        std::thread::sleep(nap);
    }
    for entry in entries.iter_mut() {
        entry.ready = entry.interest;
        entry.hangup = false;
    }
    Ok(entries.len())
}

/// Blocks until a registered interest is ready or `timeout` elapses
/// (`None` = wait forever); fills each entry's `ready`/`hangup` and
/// returns how many entries have something to report. Spurious readiness
/// is allowed (and is the fallback's whole strategy) — callers must
/// treat readiness as a hint and handle `WouldBlock`.
pub fn poll(entries: &mut [PollEntry], timeout: Option<Duration>) -> io::Result<usize> {
    #[cfg(unix)]
    {
        sys::poll_impl(entries, timeout)
    }
    #[cfg(not(unix))]
    {
        poll_fallback(entries, timeout)
    }
}

/// Incremental line framing over a byte stream: push the chunks the
/// kernel delivers, pop complete lines. Framing matches `BufRead::lines`
/// byte for byte — the line terminator is `\n`, one trailing `\r` is
/// stripped (CRLF clients), and lines must be UTF-8 — so a mux connection
/// sees exactly the requests a threaded connection would.
#[derive(Debug, Default)]
pub struct LineBuffer {
    buf: Vec<u8>,
    /// Bytes already scanned for `\n` (resume point, so a slow-dripping
    /// client costs one scan per byte, not per chunk).
    scanned: usize,
    max_line: usize,
}

impl LineBuffer {
    /// Default cap on one line's length (a line-protocol request is tens
    /// of bytes; a client that streams megabytes without a newline is
    /// attacking the buffer, not querying).
    pub const DEFAULT_MAX_LINE: usize = 64 * 1024;

    /// A fresh buffer with the default line cap.
    pub fn new() -> LineBuffer {
        LineBuffer { buf: Vec::new(), scanned: 0, max_line: Self::DEFAULT_MAX_LINE }
    }

    /// A fresh buffer capping lines at `max_line` bytes.
    pub fn with_max_line(max_line: usize) -> LineBuffer {
        LineBuffer { buf: Vec::new(), scanned: 0, max_line }
    }

    /// Appends one received chunk.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as lines.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete line, `\n` and one trailing `\r` stripped.
    ///
    /// Errors when the line is not UTF-8 or exceeds the cap — both are
    /// protocol violations; the connection should be dropped (exactly
    /// what `BufRead::lines` does to a threaded connection on bad UTF-8).
    pub fn next_line(&mut self) -> Result<Option<String>, LineError> {
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(offset) => {
                let end = self.scanned + offset;
                let mut line: Vec<u8> = self.buf.drain(..=end).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                match String::from_utf8(line) {
                    Ok(line) => Ok(Some(line)),
                    Err(_) => Err(LineError::NotUtf8),
                }
            }
            None if self.buf.len() > self.max_line => Err(LineError::TooLong),
            None => {
                self.scanned = self.buf.len();
                Ok(None)
            }
        }
    }
}

/// Why [`LineBuffer::next_line`] gave up on the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineError {
    /// The line is not valid UTF-8.
    NotUtf8,
    /// The unterminated line outgrew the cap.
    TooLong,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_assemble_across_partial_pushes() {
        let mut lb = LineBuffer::new();
        lb.push(b"QUERY dra");
        assert_eq!(lb.next_line().unwrap(), None, "no newline yet");
        lb.push(b"ma family\nSTA");
        assert_eq!(lb.next_line().unwrap().as_deref(), Some("QUERY drama family"));
        assert_eq!(lb.next_line().unwrap(), None);
        lb.push(b"TS\n\nQUIT\n");
        assert_eq!(lb.next_line().unwrap().as_deref(), Some("STATS"));
        assert_eq!(lb.next_line().unwrap().as_deref(), Some(""), "blank lines frame as empty");
        assert_eq!(lb.next_line().unwrap().as_deref(), Some("QUIT"));
        assert_eq!(lb.next_line().unwrap(), None);
        assert_eq!(lb.pending(), 0);
    }

    #[test]
    fn crlf_is_stripped_like_bufread_lines() {
        let mut lb = LineBuffer::new();
        lb.push(b"STATS\r\nQUERY a\r\n");
        assert_eq!(lb.next_line().unwrap().as_deref(), Some("STATS"));
        assert_eq!(lb.next_line().unwrap().as_deref(), Some("QUERY a"));
    }

    #[test]
    fn bad_utf8_and_oversized_lines_are_errors() {
        let mut lb = LineBuffer::new();
        lb.push(&[0xFF, 0xFE, b'\n']);
        assert_eq!(lb.next_line(), Err(LineError::NotUtf8));

        let mut lb = LineBuffer::with_max_line(8);
        lb.push(b"0123456789");
        assert_eq!(lb.next_line(), Err(LineError::TooLong));
    }

    #[test]
    fn fallback_poller_reports_everything_ready() {
        let mut entries = [PollEntry::new(-1, INTEREST_READ), PollEntry::new(-1, INTEREST_WRITE)];
        let n = poll_fallback(&mut entries, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 2);
        assert!(entries[0].readable() && !entries[0].writable());
        assert!(entries[1].writable() && !entries[1].readable());
    }

    #[cfg(unix)]
    #[test]
    fn real_poll_sees_pipe_readiness() {
        use std::io::{Read, Write};
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;

        // A connected TCP pair: writable immediately, readable only once
        // bytes arrive.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let mut entries = [PollEntry::new(server.as_raw_fd(), INTEREST_READ | INTEREST_WRITE)];
        poll(&mut entries, Some(Duration::from_millis(500))).unwrap();
        assert!(entries[0].writable(), "an idle socket has send-buffer space");
        assert!(!entries[0].readable(), "nothing to read yet");

        client.write_all(b"x").unwrap();
        poll(&mut entries, Some(Duration::from_millis(500))).unwrap();
        assert!(entries[0].readable(), "a sent byte makes the peer readable");
        let mut byte = [0u8; 1];
        server.read_exact(&mut byte).unwrap();

        // Peer closes: readable (EOF) and eventually hangup-flagged.
        drop(client);
        poll(&mut entries, Some(Duration::from_millis(500))).unwrap();
        assert!(entries[0].readable(), "EOF is observed by reading");
    }
}
