//! Batch coalescing: one execution per distinct question.
//!
//! When several concurrent callers ask the same query, resolving the
//! posting lists and running the SLCA stream once per *caller* is pure
//! waste — the engine's answer is deterministic, so one execution can feed
//! every waiter. [`coalesce`] turns one drained slice of the submission
//! queue into groups that share a key; the dispatcher executes each group
//! once and fans the (shared, immutable) response out to all members.
//!
//! Grouping preserves **first-seen order**: the earliest submission of a
//! key decides the key's position, so serving order follows arrival order
//! and no key can be starved by later arrivals. Batches are small (bounded
//! by the queue capacity), so the linear key scan beats a hash map on both
//! allocation and code size.

/// Groups `items` by `key`, preserving the order in which keys were first
/// seen, and within a group the items' original order.
pub fn coalesce<T, K, F>(items: Vec<T>, key: F) -> Vec<Vec<T>>
where
    K: PartialEq,
    F: Fn(&T) -> K,
{
    let mut groups: Vec<(K, Vec<T>)> = Vec::new();
    for item in items {
        let k = key(&item);
        match groups.iter_mut().find(|(existing, _)| *existing == k) {
            Some((_, group)) => group.push(item),
            None => groups.push((k, vec![item])),
        }
    }
    groups.into_iter().map(|(_, group)| group).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_no_groups() {
        let groups = coalesce(Vec::<u32>::new(), |x| *x);
        assert!(groups.is_empty());
    }

    #[test]
    fn groups_preserve_first_seen_key_order_and_member_order() {
        let items = vec![("b", 1), ("a", 2), ("b", 3), ("c", 4), ("a", 5)];
        let groups = coalesce(items, |(k, _)| *k);
        assert_eq!(
            groups,
            vec![vec![("b", 1), ("b", 3)], vec![("a", 2), ("a", 5)], vec![("c", 4)]]
        );
    }

    #[test]
    fn distinct_keys_stay_singleton_batches() {
        let groups = coalesce(vec![1, 2, 3], |x| *x);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn one_key_collapses_to_one_batch() {
        let groups = coalesce(vec!["q"; 7], |s| *s);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 7);
    }
}
