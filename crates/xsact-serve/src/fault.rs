//! Deterministic fault injection for the serving runtime.
//!
//! A resilient server earns that adjective only if its recovery paths are
//! exercised as routinely as its happy path. This module provides the
//! lever: a [`FaultPlan`] arms **named injection sites** that production
//! code consults at the few places failures are possible, and the chaos
//! suite (`tests/chaos.rs`) drives those sites against a fault-free
//! oracle. The plan is fully deterministic — a site fires on an exact
//! hit count, never on a clock or an RNG draw — so an injected failure
//! reproduces byte-for-byte across runs and machines.
//!
//! ## Sites
//!
//! | site               | scope        | value            | effect at the call site        |
//! |--------------------|--------------|------------------|--------------------------------|
//! | `shard_panic`      | shard index  | —                | worker panics mid-execute      |
//! | `slow_execute`     | shard index  | sleep millis     | worker stalls before executing |
//! | `io_error_on_save` | —            | —                | index save returns an IO error |
//! | `drop_connection`  | —            | —                | TCP connection closed mid-talk |
//! | `cache_poison`     | —            | —                | result-page cache insert races |
//! |                    |              |                  | an invalidation (stale-        |
//! |                    |              |                  | generation guard must reject)  |
//!
//! The *call sites* live where the behaviour belongs (the dispatch
//! closure, the persistence helpers, the connection loop); this module
//! only decides *whether* a given hit fires.
//!
//! ## Spec grammar
//!
//! A plan is a comma-separated list of entries, each
//! `site[:scope]@nth[x<value>]`, plus an optional `seed=<n>` entry:
//!
//! ```text
//! shard_panic@2               any scope; fires on the 2nd hit overall
//! shard_panic:1@3             scope 1 only; fires on its 3rd hit
//! slow_execute@1x250          1st hit sleeps 250 ms (default 50)
//! shard_panic:1@3,seed=7      seeded plan (tests derive interleavings)
//! ```
//!
//! Each entry fires **exactly once** (its nth matching hit); hit counters
//! are atomic, so concurrent shards race *to* the trigger but exactly one
//! hit wins it. The `XSACT_FAULTS` environment variable carries the same
//! grammar for binaries ([`FaultPlan::from_env`]); the CLI reads it once
//! at startup, never per request.
//!
//! ## Disarmed cost
//!
//! A disarmed plan is `None` behind the newtype: every [`should_fire`]
//! call reduces to one branch on a null pointer — no atomics, no string
//! compares, no environment reads. The serve smoke script greps for that
//! early-return pattern so a refactor cannot quietly put work on the
//! disarmed hot path.
//!
//! [`should_fire`]: FaultPlan::should_fire

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default sleep for `slow_execute` when the entry carries no `x<value>`.
const DEFAULT_SLOW_MS: u64 = 50;

/// One armed entry: a site name, an optional scope filter, the 1-based
/// hit at which it fires, and a site-specific value.
#[derive(Debug)]
struct Site {
    name: String,
    /// `None` matches any scope (the hit counter is then global).
    scope: Option<usize>,
    /// Fires when the matching-hit counter reaches exactly this value.
    nth: u64,
    /// Site-specific payload (sleep millis for `slow_execute`).
    value: u64,
    hits: AtomicU64,
}

#[derive(Debug)]
struct Plan {
    sites: Vec<Site>,
    seed: u64,
}

/// A set of armed injection sites; see the module docs. `Clone` is an
/// `Arc` bump, so the dispatcher, the connection threads, and the
/// persistence layer all consult the *same* hit counters.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan(Option<Arc<Plan>>);

impl FaultPlan {
    /// The plan that never fires — the production default. Checking it
    /// costs one branch.
    pub const fn disarmed() -> FaultPlan {
        FaultPlan(None)
    }

    /// Parses the spec grammar (see the module docs). An empty or
    /// whitespace-only spec is the disarmed plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut sites = Vec::new();
        let mut seed = 0u64;
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            if let Some(s) = entry.strip_prefix("seed=") {
                seed = s.parse().map_err(|_| format!("bad seed in fault entry {entry:?}"))?;
                continue;
            }
            let (head, nth_val) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry {entry:?} is missing '@nth'"))?;
            let (name, scope) = match head.split_once(':') {
                Some((name, scope)) => {
                    let scope =
                        scope.parse().map_err(|_| format!("bad scope in fault entry {entry:?}"))?;
                    (name, Some(scope))
                }
                None => (head, None),
            };
            if name.is_empty() {
                return Err(format!("fault entry {entry:?} has an empty site name"));
            }
            let (nth, value) = match nth_val.split_once('x') {
                Some((nth, value)) => (
                    nth.parse().map_err(|_| format!("bad hit count in fault entry {entry:?}"))?,
                    value.parse().map_err(|_| format!("bad value in fault entry {entry:?}"))?,
                ),
                None => (
                    nth_val
                        .parse()
                        .map_err(|_| format!("bad hit count in fault entry {entry:?}"))?,
                    default_value(name),
                ),
            };
            if nth == 0 {
                return Err(format!("fault entry {entry:?}: hits are 1-based"));
            }
            sites.push(Site { name: name.to_owned(), scope, nth, value, hits: AtomicU64::new(0) });
        }
        if sites.is_empty() {
            return Ok(FaultPlan::disarmed());
        }
        Ok(FaultPlan(Some(Arc::new(Plan { sites, seed }))))
    }

    /// Reads and parses the `XSACT_FAULTS` environment variable (unset or
    /// empty = disarmed). Call once at startup — never on a request path.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("XSACT_FAULTS") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::disarmed()),
        }
    }

    /// Whether any site is armed.
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// The plan's seed (`seed=<n>` entry; 0 when absent). Tests use it to
    /// derive deterministic interleavings around the injected faults.
    pub fn seed(&self) -> u64 {
        self.0.as_ref().map_or(0, |p| p.seed)
    }

    /// Registers one hit of `site` under `scope` and reports whether an
    /// armed entry fires on it (returning the entry's value, e.g. the
    /// sleep millis of `slow_execute`). Disarmed plans return `None`
    /// after a single branch — this is the whole hot-path cost.
    #[inline]
    pub fn should_fire(&self, site: &str, scope: usize) -> Option<u64> {
        let plan = self.0.as_ref()?; // disarmed: one branch, nothing else
        plan.fire(site, scope)
    }
}

impl Plan {
    fn fire(&self, site: &str, scope: usize) -> Option<u64> {
        for entry in &self.sites {
            if entry.name != site || entry.scope.is_some_and(|s| s != scope) {
                continue;
            }
            let hit = entry.hits.fetch_add(1, Ordering::Relaxed) + 1;
            if hit == entry.nth {
                return Some(entry.value);
            }
        }
        None
    }
}

fn default_value(site: &str) -> u64 {
    match site {
        "slow_execute" => DEFAULT_SLOW_MS,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_fires() {
        let plan = FaultPlan::disarmed();
        assert!(!plan.is_armed());
        for _ in 0..100 {
            assert_eq!(plan.should_fire("shard_panic", 0), None);
        }
        let empty = FaultPlan::parse("  ").unwrap();
        assert!(!empty.is_armed());
    }

    #[test]
    fn fires_exactly_once_on_the_nth_hit() {
        let plan = FaultPlan::parse("shard_panic@3").unwrap();
        assert!(plan.is_armed());
        assert_eq!(plan.should_fire("shard_panic", 0), None);
        assert_eq!(plan.should_fire("shard_panic", 1), None);
        assert_eq!(plan.should_fire("shard_panic", 2), Some(0), "3rd hit fires");
        assert_eq!(plan.should_fire("shard_panic", 0), None, "each entry fires once");
    }

    #[test]
    fn scoped_entries_count_only_their_scope() {
        let plan = FaultPlan::parse("shard_panic:1@2").unwrap();
        // Scope 0 hits never advance the counter.
        for _ in 0..5 {
            assert_eq!(plan.should_fire("shard_panic", 0), None);
        }
        assert_eq!(plan.should_fire("shard_panic", 1), None);
        assert_eq!(plan.should_fire("shard_panic", 1), Some(0), "scope 1's 2nd hit");
    }

    #[test]
    fn values_and_defaults() {
        let plan = FaultPlan::parse("slow_execute@1x250").unwrap();
        assert_eq!(plan.should_fire("slow_execute", 0), Some(250));
        let plan = FaultPlan::parse("slow_execute@1").unwrap();
        assert_eq!(plan.should_fire("slow_execute", 7), Some(DEFAULT_SLOW_MS));
    }

    #[test]
    fn multiple_entries_and_seed() {
        let plan = FaultPlan::parse("shard_panic:1@1, drop_connection@2, seed=9").unwrap();
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.should_fire("drop_connection", 0), None);
        assert_eq!(plan.should_fire("shard_panic", 1), Some(0));
        assert_eq!(plan.should_fire("drop_connection", 0), Some(0));
        assert_eq!(plan.should_fire("no_such_site", 0), None);
    }

    #[test]
    fn clones_share_hit_counters() {
        let plan = FaultPlan::parse("shard_panic@2").unwrap();
        let clone = plan.clone();
        assert_eq!(clone.should_fire("shard_panic", 0), None);
        assert_eq!(plan.should_fire("shard_panic", 0), Some(0), "2nd hit seen across clones");
    }

    #[test]
    fn concurrent_hits_fire_exactly_once() {
        let plan = FaultPlan::parse("shard_panic@50").unwrap();
        let fired = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        if plan.should_fire("shard_panic", 0).is_some() {
                            fired.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn malformed_specs_are_described() {
        for (spec, needle) in [
            ("shard_panic", "missing '@nth'"),
            ("shard_panic@zero", "bad hit count"),
            ("shard_panic@0", "1-based"),
            ("shard_panic:x@1", "bad scope"),
            (":1@1", "empty site name"),
            ("slow_execute@1xfast", "bad value"),
            ("seed=many", "bad seed"),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec:?} → {err:?}");
        }
    }
}
