//! Server-level counters: the server's own observability, as opposed to
//! the per-query `ExecutorStats` the engine already reports.
//!
//! Everything is a relaxed atomic so the dispatcher, the admission path,
//! and any number of connection threads can record without contention;
//! [`ServeCounters::snapshot`] reads one counter at a time, so a snapshot
//! taken *while* traffic flows may mix instants — at any quiescent point it
//! is exact (the same guarantee the workbench cache counters give).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of batch-size histogram buckets: sizes 1..`BATCH_HIST_BUCKETS`
/// count individually, the last bucket collects everything at or above
/// `BATCH_HIST_BUCKETS`.
pub const BATCH_HIST_BUCKETS: usize = 8;

/// Atomic server-level counters; see the module docs.
#[derive(Debug, Default)]
pub struct ServeCounters {
    queries_served: AtomicU64,
    batches: AtomicU64,
    batch_hist: [AtomicU64; BATCH_HIST_BUCKETS],
    rejected_overload: AtomicU64,
    rejected_budget: AtomicU64,
    // Executor work aggregated over every batch execution. Kept as plain
    // integers (not the engine's `ExecutorStats` type) so this crate stays
    // dependency-free; the facade does the typing.
    postings_scanned: AtomicU64,
    gallop_probes: AtomicU64,
    candidates_pruned: AtomicU64,
}

impl ServeCounters {
    /// Records one executed batch: `size` queries answered by one
    /// execution that did the given executor work.
    pub fn record_batch(&self, size: usize, postings: u64, probes: u64, pruned: u64) {
        self.queries_served.fetch_add(size as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        let bucket = size.clamp(1, BATCH_HIST_BUCKETS) - 1;
        self.batch_hist[bucket].fetch_add(1, Ordering::Relaxed);
        self.postings_scanned.fetch_add(postings, Ordering::Relaxed);
        self.gallop_probes.fetch_add(probes, Ordering::Relaxed);
        self.candidates_pruned.fetch_add(pruned, Ordering::Relaxed);
    }

    /// Records one submission turned away by admission control.
    pub fn record_overload_rejection(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one query turned away by a session budget.
    pub fn record_budget_rejection(&self) {
        self.rejected_budget.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            queries_served: self.queries_served.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_hist: std::array::from_fn(|i| self.batch_hist[i].load(Ordering::Relaxed)),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_budget: self.rejected_budget.load(Ordering::Relaxed),
            postings_scanned: self.postings_scanned.load(Ordering::Relaxed),
            gallop_probes: self.gallop_probes.load(Ordering::Relaxed),
            candidates_pruned: self.candidates_pruned.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ServeCounters`], renderable as the `STATS`
/// protocol response and the CLI's shutdown summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSnapshot {
    /// Queries answered (every member of every batch counts).
    pub queries_served: u64,
    /// Batch executions (one per distinct key per dispatch round).
    pub batches: u64,
    /// Batch-size histogram; bucket `i` counts batches of size `i + 1`,
    /// the last bucket counts size ≥ [`BATCH_HIST_BUCKETS`].
    pub batch_hist: [u64; BATCH_HIST_BUCKETS],
    /// Submissions rejected by admission control (queue full or closed).
    pub rejected_overload: u64,
    /// Queries rejected by a session budget.
    pub rejected_budget: u64,
    /// Posting entries scanned, summed over every batch execution.
    pub postings_scanned: u64,
    /// Gallop probes, summed over every batch execution.
    pub gallop_probes: u64,
    /// Candidates pruned, summed over every batch execution.
    pub candidates_pruned: u64,
}

impl ServeSnapshot {
    /// Queries saved by batching: members that rode along on another
    /// caller's execution.
    pub fn coalesced_queries(&self) -> u64 {
        self.queries_served.saturating_sub(self.batches)
    }

    /// The histogram as `1:n 2:n … 8+:n`, skipping empty buckets.
    fn render_hist(&self) -> String {
        let mut out = String::new();
        for (i, &count) in self.batch_hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            if i + 1 == BATCH_HIST_BUCKETS {
                out.push_str(&format!("{}+:{count}", BATCH_HIST_BUCKETS));
            } else {
                out.push_str(&format!("{}:{count}", i + 1));
            }
        }
        if out.is_empty() {
            out.push('-');
        }
        out
    }
}

impl fmt::Display for ServeSnapshot {
    /// The `STATS` verb's body: one `name value` pair per line, stable
    /// names so scripted clients can parse it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "queries_served {}", self.queries_served)?;
        writeln!(f, "batches_formed {}", self.batches)?;
        writeln!(f, "batch_size_hist {}", self.render_hist())?;
        writeln!(f, "coalesced_queries {}", self.coalesced_queries())?;
        writeln!(f, "rejected_overload {}", self.rejected_overload)?;
        writeln!(f, "rejected_budget {}", self.rejected_budget)?;
        writeln!(f, "postings_scanned {}", self.postings_scanned)?;
        writeln!(f, "gallop_probes {}", self.gallop_probes)?;
        write!(f, "candidates_pruned {}", self.candidates_pruned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_accumulate_into_every_counter() {
        let c = ServeCounters::default();
        c.record_batch(1, 10, 2, 1);
        c.record_batch(3, 30, 6, 3);
        let s = c.snapshot();
        assert_eq!(s.queries_served, 4);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batch_hist[0], 1);
        assert_eq!(s.batch_hist[2], 1);
        assert_eq!(s.coalesced_queries(), 2);
        assert_eq!((s.postings_scanned, s.gallop_probes, s.candidates_pruned), (40, 8, 4));
    }

    #[test]
    fn oversized_batches_land_in_the_top_bucket() {
        let c = ServeCounters::default();
        c.record_batch(BATCH_HIST_BUCKETS + 5, 0, 0, 0);
        c.record_batch(BATCH_HIST_BUCKETS, 0, 0, 0);
        let s = c.snapshot();
        assert_eq!(s.batch_hist[BATCH_HIST_BUCKETS - 1], 2);
    }

    #[test]
    fn rejections_are_counted_separately() {
        let c = ServeCounters::default();
        c.record_overload_rejection();
        c.record_overload_rejection();
        c.record_budget_rejection();
        let s = c.snapshot();
        assert_eq!(s.rejected_overload, 2);
        assert_eq!(s.rejected_budget, 1);
        assert_eq!(s.queries_served, 0);
    }

    #[test]
    fn display_is_line_oriented_and_stable() {
        let c = ServeCounters::default();
        c.record_batch(2, 7, 1, 0);
        let text = c.snapshot().to_string();
        assert!(text.contains("queries_served 2"), "{text}");
        assert!(text.contains("batch_size_hist 2:1"), "{text}");
        assert!(text.contains("postings_scanned 7"), "{text}");
        assert!(!text.ends_with('\n'), "no trailing newline; the framer adds it");
    }

    #[test]
    fn empty_histogram_renders_a_dash() {
        let s = ServeCounters::default().snapshot();
        assert!(s.to_string().contains("batch_size_hist -"));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let c = ServeCounters::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        c.record_batch(2, 1, 1, 1);
                        c.record_overload_rejection();
                    }
                });
            }
        });
        let s = c.snapshot();
        assert_eq!(s.queries_served, 1600);
        assert_eq!(s.batches, 800);
        assert_eq!(s.rejected_overload, 800);
    }
}
