//! Server-level counters and latency histograms: the server's own
//! observability, as opposed to the per-query `ExecutorStats` the engine
//! already reports.
//!
//! Every metric lives in an `xsact-obs` [`MetricsRegistry`], so the whole
//! set has a machine-readable exposition (the `METRICS` verb and the
//! `/metrics` HTTP endpoint) for free; the typed [`ServeCounters`] struct
//! keeps `Arc` handles to the hot metrics so the dispatcher, the
//! admission path, and any number of connection threads record through
//! one atomic op without ever touching the registry again. A snapshot
//! reads one metric at a time, so a snapshot taken *while* traffic flows
//! may mix instants — at any quiescent point it is exact (the same
//! guarantee the workbench cache counters give).
//!
//! Latency histograms record nanoseconds. Per the serving contract,
//! `queue_wait`, `execute`, and `e2e` are recorded **once per query**
//! (every member of a coalesced batch observed that latency), so each
//! histogram's count equals `queries_served` at any quiescent point —
//! the CI smoke test pins it.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use xsact_obs::{Counter, Histogram, HistogramSnapshot, MetricsRegistry};

/// Typed handles over the serving metrics registry; see the module docs.
#[derive(Debug)]
pub struct ServeCounters {
    registry: Arc<MetricsRegistry>,
    queries_served: Arc<Counter>,
    batches: Arc<Counter>,
    batch_size: Arc<Histogram>,
    rejected_overload: Arc<Counter>,
    rejected_budget: Arc<Counter>,
    rejected_deadline: Arc<Counter>,
    shard_failed: Arc<Counter>,
    shard_restarts: Arc<Counter>,
    // Executor work aggregated over every batch execution. Kept as plain
    // counters (not the engine's `ExecutorStats` type) so this crate stays
    // free of engine types; the facade does the typing.
    postings_scanned: Arc<Counter>,
    gallop_probes: Arc<Counter>,
    candidates_pruned: Arc<Counter>,
    postings_shared: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    queue_wait_ns: Arc<Histogram>,
    batch_form_ns: Arc<Histogram>,
    execute_ns: Arc<Histogram>,
    reply_write_ns: Arc<Histogram>,
    e2e_ns: Arc<Histogram>,
}

impl Default for ServeCounters {
    fn default() -> Self {
        ServeCounters::new()
    }
}

impl ServeCounters {
    /// A fresh counter set backed by its own registry.
    pub fn new() -> ServeCounters {
        let registry = Arc::new(MetricsRegistry::new());
        ServeCounters {
            queries_served: registry.counter("xsact_queries_served"),
            batches: registry.counter("xsact_batches_formed"),
            batch_size: registry.histogram("xsact_batch_size"),
            rejected_overload: registry.counter("xsact_rejected_overload"),
            rejected_budget: registry.counter("xsact_rejected_budget"),
            rejected_deadline: registry.counter("xsact_rejected_deadline"),
            shard_failed: registry.counter("xsact_shard_failed"),
            shard_restarts: registry.counter("xsact_shard_restarts"),
            postings_scanned: registry.counter("xsact_postings_scanned"),
            gallop_probes: registry.counter("xsact_gallop_probes"),
            candidates_pruned: registry.counter("xsact_candidates_pruned"),
            postings_shared: registry.counter("xsact_postings_shared"),
            cache_hits: registry.counter("xsact_cache_hits"),
            cache_misses: registry.counter("xsact_cache_misses"),
            cache_evictions: registry.counter("xsact_cache_evictions"),
            queue_wait_ns: registry.histogram("xsact_queue_wait_ns"),
            batch_form_ns: registry.histogram("xsact_batch_form_ns"),
            execute_ns: registry.histogram("xsact_execute_ns"),
            reply_write_ns: registry.histogram("xsact_reply_write_ns"),
            e2e_ns: registry.histogram("xsact_e2e_ns"),
            registry,
        }
    }

    /// The backing registry — the place to register *additional* metrics
    /// that should ride along in the same exposition (the facade adds
    /// per-shard busy-time histograms here).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The full Prometheus-style exposition (the `METRICS` verb's body).
    pub fn exposition(&self) -> String {
        self.registry.expose()
    }

    /// Records one executed batch: `size` queries answered by one
    /// execution that did the given executor work (`shared` = posting
    /// entries served from the batch's plan-fragment table).
    pub fn record_batch(&self, size: usize, postings: u64, probes: u64, pruned: u64, shared: u64) {
        self.queries_served.add(size as u64);
        self.batches.inc();
        self.batch_size.record(size as u64);
        self.postings_scanned.add(postings);
        self.gallop_probes.add(probes);
        self.candidates_pruned.add(pruned);
        self.postings_shared.add(shared);
    }

    /// Records one query answered straight from the result-page cache: it
    /// counts as served, and its queue-wait and execute observations are
    /// zero (the hit skipped both stages) so every latency histogram's
    /// count still equals `queries_served`. No batch is formed, so the
    /// `coalesced_queries` arithmetic is untouched.
    pub fn record_cache_hit(&self) {
        self.cache_hits.inc();
        self.queries_served.inc();
        self.queue_wait_ns.record(0);
        self.execute_ns.record(0);
    }

    /// Records one cache lookup that missed (the query went on to the
    /// submission queue).
    pub fn record_cache_miss(&self) {
        self.cache_misses.inc();
    }

    /// Records entries evicted by a cache insert that ran over a bound.
    pub fn record_cache_evictions(&self, evicted: u64) {
        self.cache_evictions.add(evicted);
    }

    /// Records one submission turned away by admission control.
    pub fn record_overload_rejection(&self) {
        self.rejected_overload.inc();
    }

    /// Records one query turned away by a session budget.
    pub fn record_budget_rejection(&self) {
        self.rejected_budget.inc();
    }

    /// Records one query whose deadline elapsed before an answer could be
    /// produced (checked at dispatch and again after batch execute).
    pub fn record_deadline_rejection(&self) {
        self.rejected_deadline.inc();
    }

    /// Records one batch lost to a shard-worker panic: `members` queries
    /// answered with the typed shard failure, and `restarts` workers
    /// respawned by the pool's supervisor.
    pub fn record_shard_failure(&self, members: usize, restarts: u64) {
        self.shard_failed.add(members as u64);
        self.shard_restarts.add(restarts);
    }

    /// Records how long one submission sat in the queue before its
    /// dispatch round swept it up (once per query).
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait_ns.record_duration(wait);
    }

    /// Records how long one dispatch round took to sweep and coalesce its
    /// submissions (once per round).
    pub fn record_batch_form(&self, took: Duration) {
        self.batch_form_ns.record_duration(took);
    }

    /// Records one batch's shard-pool execution latency, once per member
    /// — every query in the batch observed it, and keeping the count
    /// equal to `queries_served` is part of the exposition contract.
    pub fn record_execute(&self, took: Duration, members: usize) {
        for _ in 0..members {
            self.execute_ns.record_duration(took);
        }
    }

    /// Records the time one response spent in the socket write.
    pub fn record_reply_write(&self, took: Duration) {
        self.reply_write_ns.record_duration(took);
    }

    /// Records one query's end-to-end latency, submission to answer in
    /// hand (once per query).
    pub fn record_e2e(&self, took: Duration) {
        self.e2e_ns.record_duration(took);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            queries_served: self.queries_served.get(),
            batches: self.batches.get(),
            batch_size: self.batch_size.snapshot(),
            rejected_overload: self.rejected_overload.get(),
            rejected_budget: self.rejected_budget.get(),
            rejected_deadline: self.rejected_deadline.get(),
            shard_failed: self.shard_failed.get(),
            shard_restarts: self.shard_restarts.get(),
            postings_scanned: self.postings_scanned.get(),
            gallop_probes: self.gallop_probes.get(),
            candidates_pruned: self.candidates_pruned.get(),
            postings_shared: self.postings_shared.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_evictions: self.cache_evictions.get(),
            queue_wait_ns: self.queue_wait_ns.snapshot(),
            execute_ns: self.execute_ns.snapshot(),
            e2e_ns: self.e2e_ns.snapshot(),
        }
    }
}

/// A point-in-time copy of [`ServeCounters`], renderable as the `STATS`
/// protocol response and the CLI's shutdown summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSnapshot {
    /// Queries answered (every member of every batch counts).
    pub queries_served: u64,
    /// Batch executions (one per distinct key per dispatch round).
    pub batches: u64,
    /// Batch-size distribution (one observation per batch; log-bucketed,
    /// so arbitrarily large `--max-batch` values stay resolvable).
    pub batch_size: HistogramSnapshot,
    /// Submissions rejected by admission control (queue full or closed).
    pub rejected_overload: u64,
    /// Queries rejected by a session budget.
    pub rejected_budget: u64,
    /// Queries whose deadline elapsed before an answer could be produced.
    pub rejected_deadline: u64,
    /// Queries answered with a typed shard failure (their batch's worker
    /// panicked).
    pub shard_failed: u64,
    /// Shard workers respawned by the pool supervisor after a panic.
    pub shard_restarts: u64,
    /// Posting entries scanned, summed over every batch execution.
    pub postings_scanned: u64,
    /// Gallop probes, summed over every batch execution.
    pub gallop_probes: u64,
    /// Candidates pruned, summed over every batch execution.
    pub candidates_pruned: u64,
    /// Posting entries served from per-batch plan-fragment tables instead
    /// of fresh index resolutions, summed over every batch execution.
    pub postings_shared: u64,
    /// Queries answered straight from the result-page cache (each also
    /// counts in `queries_served`).
    pub cache_hits: u64,
    /// Cache lookups that missed and went on to the submission queue.
    pub cache_misses: u64,
    /// Result pages evicted to keep the cache inside its bounds.
    pub cache_evictions: u64,
    /// Queue-wait latency, one observation per query, nanoseconds.
    pub queue_wait_ns: HistogramSnapshot,
    /// Shard-pool execution latency, one observation per query,
    /// nanoseconds.
    pub execute_ns: HistogramSnapshot,
    /// End-to-end latency (submission to answer), one observation per
    /// query, nanoseconds.
    pub e2e_ns: HistogramSnapshot,
}

impl ServeSnapshot {
    /// Queries answered without an execution of their own: members that
    /// rode along in a coalesced batch, plus result-page cache hits
    /// (which ride along on a *previous* execution).
    pub fn coalesced_queries(&self) -> u64 {
        self.queries_served.saturating_sub(self.batches)
    }
}

impl fmt::Display for ServeSnapshot {
    /// The `STATS` verb's body: one `name value` pair per line, stable
    /// names so scripted clients can parse it. Histogram values render as
    /// `count:N p50:V p99:V max:V` summaries (`-` when empty); the
    /// `_us` lines are microseconds.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "queries_served {}", self.queries_served)?;
        writeln!(f, "batches_formed {}", self.batches)?;
        writeln!(f, "batch_size_hist {}", self.batch_size.summary_line(1))?;
        writeln!(f, "coalesced_queries {}", self.coalesced_queries())?;
        writeln!(f, "rejected_overload {}", self.rejected_overload)?;
        writeln!(f, "rejected_budget {}", self.rejected_budget)?;
        writeln!(f, "rejected_deadline {}", self.rejected_deadline)?;
        writeln!(f, "shard_failed {}", self.shard_failed)?;
        writeln!(f, "shard_restarts {}", self.shard_restarts)?;
        writeln!(f, "postings_scanned {}", self.postings_scanned)?;
        writeln!(f, "gallop_probes {}", self.gallop_probes)?;
        writeln!(f, "candidates_pruned {}", self.candidates_pruned)?;
        writeln!(f, "postings_shared {}", self.postings_shared)?;
        writeln!(f, "cache_hits {}", self.cache_hits)?;
        writeln!(f, "cache_misses {}", self.cache_misses)?;
        writeln!(f, "cache_evictions {}", self.cache_evictions)?;
        writeln!(f, "queue_wait_us {}", self.queue_wait_ns.summary_line(1_000))?;
        writeln!(f, "execute_us {}", self.execute_ns.summary_line(1_000))?;
        write!(f, "e2e_us {}", self.e2e_ns.summary_line(1_000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_accumulate_into_every_counter() {
        let c = ServeCounters::default();
        c.record_batch(1, 10, 2, 1, 0);
        c.record_batch(3, 30, 6, 3, 4);
        let s = c.snapshot();
        assert_eq!(s.queries_served, 4);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batch_size.count, 2);
        assert_eq!(s.batch_size.max, 3);
        assert_eq!(s.coalesced_queries(), 2);
        assert_eq!((s.postings_scanned, s.gallop_probes, s.candidates_pruned), (40, 8, 4));
    }

    #[test]
    fn large_batches_stay_resolvable() {
        // The old fixed 1..8+ histogram lumped everything above 8 into one
        // bucket; the log-bucketed histogram keeps resolution.
        let c = ServeCounters::default();
        c.record_batch(64, 0, 0, 0, 0);
        c.record_batch(1024, 0, 0, 0, 0);
        let s = c.snapshot();
        assert_eq!(s.batch_size.max, 1024);
        assert_eq!(s.batch_size.p50(), 64);
    }

    #[test]
    fn cache_hits_count_as_served_and_keep_histogram_counts() {
        let c = ServeCounters::default();
        c.record_batch(1, 10, 2, 1, 0);
        c.record_cache_miss();
        c.record_cache_hit();
        c.record_cache_hit();
        c.record_cache_evictions(3);
        let s = c.snapshot();
        assert_eq!(s.queries_served, 3, "hits count as served");
        assert_eq!(s.batches, 1, "a hit forms no batch");
        assert_eq!((s.cache_hits, s.cache_misses, s.cache_evictions), (2, 1, 3));
        assert_eq!(s.queue_wait_ns.count, s.queries_served - 1, "batch path records its own");
        assert_eq!(s.execute_ns.count, 2, "hits record zero-duration execute observations");
        assert_eq!(s.coalesced_queries(), 2);
        let text = s.to_string();
        assert!(text.contains("cache_hits 2"), "{text}");
        assert!(text.contains("cache_misses 1"), "{text}");
        assert!(text.contains("cache_evictions 3"), "{text}");
        let exposition = c.exposition();
        assert!(exposition.contains("xsact_cache_hits 2"), "{exposition}");
    }

    #[test]
    fn postings_shared_accumulates_per_batch() {
        let c = ServeCounters::default();
        c.record_batch(2, 10, 2, 1, 5);
        c.record_batch(1, 4, 1, 0, 2);
        let s = c.snapshot();
        assert_eq!(s.postings_shared, 7);
        assert!(s.to_string().contains("postings_shared 7"));
        assert!(c.exposition().contains("xsact_postings_shared 7"));
    }

    #[test]
    fn rejections_are_counted_separately() {
        let c = ServeCounters::default();
        c.record_overload_rejection();
        c.record_overload_rejection();
        c.record_budget_rejection();
        c.record_deadline_rejection();
        let s = c.snapshot();
        assert_eq!(s.rejected_overload, 2);
        assert_eq!(s.rejected_budget, 1);
        assert_eq!(s.rejected_deadline, 1);
        assert_eq!(s.queries_served, 0);
    }

    #[test]
    fn shard_failures_count_members_and_restarts() {
        let c = ServeCounters::default();
        c.record_shard_failure(3, 1);
        c.record_shard_failure(1, 2);
        let s = c.snapshot();
        assert_eq!(s.shard_failed, 4, "every member of a failed batch counts");
        assert_eq!(s.shard_restarts, 3);
        assert_eq!(s.queries_served, 0, "a failed batch serves nobody");
        let text = s.to_string();
        assert!(text.contains("shard_failed 4"), "{text}");
        assert!(text.contains("shard_restarts 3"), "{text}");
        assert!(text.contains("rejected_deadline 0"), "{text}");
        let exposition = c.exposition();
        assert!(exposition.contains("xsact_shard_restarts 3"), "{exposition}");
        assert!(exposition.contains("# TYPE xsact_shard_failed counter"), "{exposition}");
    }

    #[test]
    fn latency_recorders_feed_their_histograms() {
        let c = ServeCounters::default();
        c.record_queue_wait(Duration::from_micros(5));
        c.record_execute(Duration::from_micros(40), 3);
        c.record_e2e(Duration::from_micros(50));
        c.record_batch_form(Duration::from_nanos(300));
        c.record_reply_write(Duration::from_nanos(900));
        let s = c.snapshot();
        assert_eq!(s.queue_wait_ns.count, 1);
        assert_eq!(s.execute_ns.count, 3, "execute records once per member");
        assert_eq!(s.e2e_ns.count, 1);
        assert!(s.e2e_ns.max >= 50_000);
    }

    #[test]
    fn display_is_line_oriented_and_stable() {
        let c = ServeCounters::default();
        c.record_batch(2, 7, 1, 0, 0);
        let text = c.snapshot().to_string();
        assert!(text.contains("queries_served 2"), "{text}");
        assert!(text.contains("batch_size_hist count:1 p50:2 p99:2 max:2"), "{text}");
        assert!(text.contains("postings_scanned 7"), "{text}");
        assert!(text.contains("queue_wait_us -"), "{text}");
        assert!(text.contains("e2e_us -"), "{text}");
        assert!(!text.ends_with('\n'), "no trailing newline; the framer adds it");
    }

    #[test]
    fn exposition_contains_the_serving_metrics() {
        let c = ServeCounters::default();
        c.record_batch(1, 5, 1, 0, 0);
        c.record_e2e(Duration::from_micros(10));
        let text = c.exposition();
        for name in [
            "# TYPE xsact_queries_served counter",
            "# TYPE xsact_batch_size summary",
            "# TYPE xsact_queue_wait_ns summary",
            "# TYPE xsact_execute_ns summary",
            "# TYPE xsact_e2e_ns summary",
            "xsact_e2e_ns_count 1",
        ] {
            assert!(text.contains(name), "missing {name:?} in:\n{text}");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let c = ServeCounters::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        c.record_batch(2, 1, 1, 1, 1);
                        c.record_overload_rejection();
                        c.record_e2e(Duration::from_nanos(500));
                    }
                });
            }
        });
        let s = c.snapshot();
        assert_eq!(s.queries_served, 1600);
        assert_eq!(s.batches, 800);
        assert_eq!(s.rejected_overload, 800);
        assert_eq!(s.e2e_ns.count, 800);
    }
}
