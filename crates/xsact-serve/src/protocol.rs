//! The line protocol the TCP front end speaks.
//!
//! Newline-delimited text in both directions — trivially scriptable with
//! any socket tool, no framing library needed (the container is offline,
//! and a length-prefixed binary protocol would buy nothing at this
//! message size).
//!
//! **Requests** are one line each: a verb, optionally followed by
//! arguments.
//!
//! ```text
//! QUERY drama family      run the query under the session's top-k
//! TOP 3                   set the session's top-k
//! STATS                   server counters
//! METRICS                 Prometheus-style metrics exposition
//! QUIT                    close this connection
//! SHUTDOWN                drain the server and stop it
//! ```
//!
//! **Responses** are one or more lines terminated by a lone `.` line
//! ([`END_MARKER`]), SMTP-style, so clients read until the marker without
//! needing a length header:
//!
//! ```text
//! OK 3
//!   [ 1] Movie …  @movies-01  (score 1.234)
//!   …
//! .
//! ```
//!
//! Errors are a single `ERR <CODE> <message>` line (plus the marker);
//! codes are stable identifiers (`OVERLOADED`, `BUDGET_EXCEEDED`,
//! `DEADLINE_EXCEEDED`, `SHARD_FAILED`, `EMPTY_QUERY`, `BAD_REQUEST`,
//! `INTERNAL`), messages are the facade's human-readable `Display` text.
//! `OVERLOADED`, `DEADLINE_EXCEEDED`, and `SHARD_FAILED` are retryable:
//! nothing (durable) was executed on the caller's behalf, and a
//! `SHARD_FAILED` worker is respawned before the error line is written.

/// The line ending every response: a lone `.`.
pub const END_MARKER: &str = ".";

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a keyword query.
    Query {
        /// The raw query text (everything after the verb).
        text: String,
    },
    /// Set the session's top-k for subsequent queries.
    Top {
        /// The new bound.
        k: usize,
    },
    /// Report server counters.
    Stats,
    /// Report the full metrics exposition (Prometheus text format).
    Metrics,
    /// Close this connection.
    Quit,
    /// Drain the server and stop it.
    Shutdown,
}

impl Request {
    /// Parses one request line. Blank lines are ignored (`Ok(None)`), so
    /// interactive sessions can hit return without tripping an error;
    /// anything else unrecognised is a `BAD_REQUEST`-worthy message.
    pub fn parse(line: &str) -> Result<Option<Request>, String> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(None);
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((verb, rest)) => (verb, rest.trim()),
            None => (line, ""),
        };
        match verb {
            "QUERY" => {
                if rest.is_empty() {
                    return Err("QUERY needs query text".to_owned());
                }
                Ok(Some(Request::Query { text: rest.to_owned() }))
            }
            "TOP" => {
                let k = rest
                    .parse::<usize>()
                    .map_err(|_| format!("TOP needs a non-negative integer, got {rest:?}"))?;
                Ok(Some(Request::Top { k }))
            }
            "STATS" => Request::bare(verb, rest, Request::Stats),
            "METRICS" => Request::bare(verb, rest, Request::Metrics),
            "QUIT" => Request::bare(verb, rest, Request::Quit),
            "SHUTDOWN" => Request::bare(verb, rest, Request::Shutdown),
            other => Err(format!(
                "unknown verb {other:?}; use QUERY | TOP | STATS | METRICS | QUIT | SHUTDOWN"
            )),
        }
    }

    fn bare(verb: &str, rest: &str, req: Request) -> Result<Option<Request>, String> {
        if rest.is_empty() {
            Ok(Some(req))
        } else {
            Err(format!("{verb} takes no arguments"))
        }
    }
}

/// Renders an `ERR` line. Control characters in `message` are flattened to
/// spaces so one logical error can never span (and thereby corrupt) the
/// line framing.
pub fn err_line(code: &str, message: &str) -> String {
    let flat: String = message.chars().map(|c| if c.is_control() { ' ' } else { c }).collect();
    format!("ERR {code} {flat}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse() {
        assert_eq!(
            Request::parse("QUERY drama family").unwrap(),
            Some(Request::Query { text: "drama family".into() })
        );
        assert_eq!(Request::parse("TOP 5").unwrap(), Some(Request::Top { k: 5 }));
        assert_eq!(Request::parse("STATS").unwrap(), Some(Request::Stats));
        assert_eq!(Request::parse("METRICS").unwrap(), Some(Request::Metrics));
        assert_eq!(Request::parse("QUIT").unwrap(), Some(Request::Quit));
        assert_eq!(Request::parse("SHUTDOWN").unwrap(), Some(Request::Shutdown));
    }

    #[test]
    fn blank_lines_are_ignored() {
        assert_eq!(Request::parse("").unwrap(), None);
        assert_eq!(Request::parse("   \t ").unwrap(), None);
    }

    #[test]
    fn query_text_survives_inner_whitespace() {
        assert_eq!(
            Request::parse("QUERY   war  soldier ").unwrap(),
            Some(Request::Query { text: "war  soldier".into() })
        );
    }

    #[test]
    fn malformed_requests_are_described() {
        assert!(Request::parse("QUERY").unwrap_err().contains("query text"));
        assert!(Request::parse("TOP").unwrap_err().contains("integer"));
        assert!(Request::parse("TOP many").unwrap_err().contains("integer"));
        assert!(Request::parse("STATS now").unwrap_err().contains("no arguments"));
        assert!(Request::parse("METRICS all").unwrap_err().contains("no arguments"));
        assert!(Request::parse("EXPLODE").unwrap_err().contains("unknown verb"));
        // Verbs are case-sensitive — lowercase is a different (unknown) verb.
        assert!(Request::parse("query x").unwrap_err().contains("unknown verb"));
    }

    #[test]
    fn err_line_never_spans_lines() {
        let line = err_line("INTERNAL", "multi\nline\r\nmessage");
        assert_eq!(line.lines().count(), 1);
        assert!(line.starts_with("ERR INTERNAL "));
    }
}
