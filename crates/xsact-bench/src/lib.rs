//! Shared workload construction for the XSACT benchmark harness.
//!
//! Every table/figure binary and every bench builds its inputs through this
//! module so that the workloads stay consistent across runs and between the
//! harness and the benches. The workloads run through the [`Workbench`]
//! facade: one workbench per dataset, so repeated preparations (e.g. the
//! scaling sweeps that re-prepare the same queries with different caps)
//! reuse cached features instead of re-extracting them.

use xsact::prelude::*;
use xsact_core::Instance;
use xsact_data::movies::{qm_queries, MovieGenConfig, MoviesGen};

pub mod harness;

pub use harness::{emit_json, quick_mode, record, scaled};

/// Default movie-dataset size for the Figure 4 workload.
pub const FIG4_MOVIES: usize = 400;

/// Default seed (shared with the generators' defaults).
pub const FIG4_SEED: u64 = 42;

/// The paper lets the user tick the results to compare; the Figure 4
/// workload compares up to this many results per query so DoD values stay
/// in the same range as the paper's plot (tens, not thousands — DoD grows
/// quadratically in the number of results).
pub const FIG4_RESULT_CAP: usize = 6;

/// Size bound `L` used by the Figure 4 workload.
pub const FIG4_BOUND: usize = 6;

/// A prepared benchmark query: its label (QM1–QM8), the query text, and the
/// preprocessed comparison instance.
pub struct PreparedQuery {
    /// Query label (QM1..QM8).
    pub label: &'static str,
    /// Raw query text, e.g. `drama family`.
    pub text: String,
    /// Number of results the query returned (before capping).
    pub result_count: usize,
    /// The preprocessed instance over the (capped) result features.
    /// `None` when the query matched fewer than two results — nothing to
    /// compare.
    pub instance: Option<Instance>,
}

/// Builds the movie-search workbench for the Figure 4 experiments.
pub fn movie_workbench(movies: usize, seed: u64) -> Workbench {
    let doc = MoviesGen::new(MovieGenConfig { movies, seed, ..Default::default() }).generate();
    Workbench::from_document(doc)
}

/// Runs the eight QM queries and preprocesses each into a comparison
/// instance with the given size bound. Feature extraction goes through the
/// workbench cache, so only the first preparation per dataset pays it.
pub fn prepare_qm_queries(wb: &Workbench, result_cap: usize, bound: usize) -> Vec<PreparedQuery> {
    qm_queries()
        .into_iter()
        .map(|(label, text)| {
            let pipeline = wb.query(&text).expect("QM queries are never empty").take(result_cap);
            let result_count = pipeline.results().len();
            let instance = match pipeline.features() {
                Ok(features) if features.len() >= 2 => Some(Instance::build(
                    &features,
                    DfsConfig { size_bound: bound, threshold_pct: 10.0 },
                )),
                _ => None,
            };
            PreparedQuery { label, text, result_count, instance }
        })
        .collect()
}

/// A fixed-width row printer for the harness binaries.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>w$}  ", w = *w));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_queries_cover_qm1_to_qm8() {
        let wb = movie_workbench(120, 1);
        let prepared = prepare_qm_queries(&wb, 6, 8);
        assert_eq!(prepared.len(), 8);
        assert_eq!(prepared[0].label, "QM1");
        assert_eq!(prepared[7].label, "QM8");
        // Most queries match something on a 120-movie dataset.
        let nonempty = prepared.iter().filter(|p| p.instance.is_some()).count();
        assert!(nonempty >= 6, "only {nonempty} queries matched");
        // The cap is respected.
        for p in prepared.iter().filter_map(|p| p.instance.as_ref()) {
            assert!(p.result_count() <= 6);
        }
    }

    #[test]
    fn repeated_preparation_hits_the_feature_cache() {
        let wb = movie_workbench(80, 1);
        prepare_qm_queries(&wb, 4, 6);
        let first = wb.cache_stats();
        prepare_qm_queries(&wb, 4, 6);
        let second = wb.cache_stats();
        assert_eq!(first.misses, second.misses, "second pass re-extracted features");
        assert!(second.hits > first.hits);
    }
}
