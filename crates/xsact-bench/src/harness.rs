//! A tiny self-timing bench harness.
//!
//! The build environment is offline, so criterion is unavailable; the
//! `[[bench]]` targets are plain binaries (`harness = false`) built on this
//! module instead. It keeps the parts that matter for the paper's tables —
//! warm-up, multiple timed samples, median/min reporting — and drops the
//! statistics machinery.

use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One machine-readable measurement, accumulated by [`bench_with`] /
/// [`record`] and flushed to `BENCH_<bin>.json` by [`emit_json`].
#[derive(Debug, Clone)]
struct Record {
    name: String,
    metric: String,
    value: f64,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Registers one numeric measurement for [`emit_json`]. Timing benches do
/// this automatically; stat-style callers use it for counters and byte
/// sizes they also print in human form.
pub fn record(name: &str, metric: &str, value: f64) {
    RECORDS.lock().expect("bench record registry poisoned").push(Record {
        name: name.to_owned(),
        metric: metric.to_owned(),
        value,
    });
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes every measurement this process recorded to `BENCH_<bin>.json`
/// in the current directory — a flat, dependency-free JSON document CI
/// and regression tooling can diff without scraping the human-oriented
/// stdout (which stays byte-identical to the goldens). Each entry carries
/// the bench name, the metric, the value, and the machine's available
/// parallelism so cross-machine comparisons can be normalised.
pub fn emit_json(bin: &str) {
    let parallelism = std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1);
    let records = RECORDS.lock().expect("bench record registry poisoned");
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bin)));
    body.push_str(&format!("  \"parallelism\": {parallelism},\n"));
    body.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"metric\": \"{}\", \"value\": {}}}{sep}\n",
            json_escape(&r.name),
            json_escape(&r.metric),
            r.value
        ));
    }
    body.push_str("  ]\n}\n");
    let path = format!("BENCH_{bin}.json");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// How long a benchmark warms up and how many samples it takes.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Warm-up period before sampling starts.
    pub warm_up: Duration,
    /// Number of timed samples.
    pub samples: usize,
    /// Minimum wall-clock time one sample should cover; iterations per
    /// sample are scaled up until a sample takes at least this long.
    pub min_sample_time: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        if quick_mode() {
            return BenchConfig::quick();
        }
        BenchConfig {
            warm_up: Duration::from_millis(120),
            samples: 15,
            min_sample_time: Duration::from_millis(12),
        }
    }
}

impl BenchConfig {
    /// The smoke-test configuration: one warm-up call, one sample of one
    /// iteration. The numbers are meaningless as measurements — the point
    /// is that every bench body still *runs* (so CI catches bit-rot) in a
    /// fraction of a second.
    pub fn quick() -> Self {
        BenchConfig { warm_up: Duration::ZERO, samples: 1, min_sample_time: Duration::ZERO }
    }
}

/// Whether this process should run benches in smoke mode: one tiny
/// iteration per bench, shrunken workloads. Enabled by `XSACT_BENCH_QUICK`
/// (any value but `0`/empty) or a `--quick` argument; CI sets the
/// environment variable so every self-timing binary is exercised on every
/// PR without costing minutes.
pub fn quick_mode() -> bool {
    std::env::var_os("XSACT_BENCH_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
        || std::env::args().any(|a| a == "--quick")
}

/// `full`, shrunk to `quick` in [smoke mode](quick_mode) — the one-liner
/// the bench binaries use to scale their workloads.
pub fn scaled(full: usize, quick: usize) -> usize {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Median time per iteration.
    pub median: Duration,
    /// Fastest observed time per iteration.
    pub min: Duration,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
}

/// Runs `f` under the default configuration and prints one result line,
/// mirroring `group/name  median  (min)` of the criterion output.
pub fn bench<T>(group: &str, name: &str, mut f: impl FnMut() -> T) -> Summary {
    bench_with(BenchConfig::default(), group, name, &mut f)
}

/// Runs `f` under an explicit configuration and prints one result line.
pub fn bench_with<T>(
    cfg: BenchConfig,
    group: &str,
    name: &str,
    f: &mut impl FnMut() -> T,
) -> Summary {
    // Warm up and calibrate the per-sample iteration count.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < cfg.warm_up || warm_iters == 0 {
        black_box(f());
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1024
    } else {
        (cfg.min_sample_time.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
    };

    let mut samples: Vec<Duration> = (0..cfg.samples.max(1))
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            t.elapsed() / iters_per_sample as u32
        })
        .collect();
    samples.sort();
    let summary = Summary { median: samples[samples.len() / 2], min: samples[0], iters_per_sample };
    let full = format!("{group}/{name}");
    record(&full, "median_ns", summary.median.as_nanos() as f64);
    record(&full, "min_ns", summary.min.as_nanos() as f64);
    println!(
        "{group}/{name:<42} {:>12}   (min {:>12}, {} iters/sample)",
        format_duration(summary.median),
        format_duration(summary.min),
        summary.iters_per_sample
    );
    summary
}

/// Prints one non-timing statistic line in the bench output format, so
/// memory-footprint and counter stats line up with the timing rows.
pub fn stat(group: &str, name: &str, value: impl std::fmt::Display) {
    println!("{group}/{name:<42} {value}");
}

/// Human-friendly byte count with KiB/MiB scaling.
pub fn format_bytes(bytes: usize) -> String {
    if bytes < 1024 {
        format!("{bytes} B")
    } else if bytes < 1024 * 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
    }
}

/// Human-friendly duration with µs/ms/s scaling.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let cfg = BenchConfig {
            warm_up: Duration::from_millis(2),
            samples: 3,
            min_sample_time: Duration::from_micros(200),
        };
        let mut work = || (0..100u64).sum::<u64>();
        let s = bench_with(cfg, "test", "sum", &mut work);
        assert!(s.min <= s.median);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn quick_config_runs_one_tiny_iteration() {
        let mut calls = 0u64;
        let s = bench_with(BenchConfig::quick(), "test", "quick", &mut || calls += 1);
        assert_eq!(s.iters_per_sample, 1);
        // One calibration call plus one sample iteration.
        assert_eq!(calls, 2);
    }

    #[test]
    fn scaled_only_shrinks_in_quick_mode() {
        // The harness honours however this test process was launched, so
        // assert consistency rather than a fixed mode.
        if quick_mode() {
            assert_eq!(scaled(400, 40), 40);
        } else {
            assert_eq!(scaled(400, 40), 400);
        }
    }

    #[test]
    fn durations_format_with_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(4)), "4.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn bytes_format_with_units() {
        assert_eq!(format_bytes(12), "12 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), "x\\ny");
    }

    #[test]
    fn emit_json_writes_recorded_measurements() {
        let dir = std::env::temp_dir().join(format!("xsact_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        record("test/emit", "median_ns", 42.0);
        emit_json("harness_selftest");
        let text = std::fs::read_to_string("BENCH_harness_selftest.json").unwrap();
        std::env::set_current_dir(old).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(text.contains("\"bench\": \"harness_selftest\""));
        assert!(text.contains("\"parallelism\": "));
        assert!(
            text.contains("{\"name\": \"test/emit\", \"metric\": \"median_ns\", \"value\": 42}")
        );
    }
}
