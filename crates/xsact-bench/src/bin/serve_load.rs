//! SERVE-LOAD — the serving runtime under load.
//!
//! Two experiments against one `CorpusServer` (persistent shard pool,
//! batching dispatcher, bounded admission queue):
//!
//! 1. **Closed loop**: N client threads, each submitting its next query the
//!    moment the previous answer lands. Reports per-query latency (p50,
//!    p99) and aggregate throughput as N grows — the batching dispatcher
//!    should turn extra concurrency into larger batches, not proportionally
//!    longer queues.
//! 2. **Open loop**: a pacer thread injects queries at fixed offered rates
//!    regardless of completions, the realistic arrival model. Latency is
//!    measured from the *scheduled* arrival instant, so queueing delay (and
//!    coordinated omission) is included; admission-control rejections are
//!    counted rather than hidden.
//!
//! Plus three hot-path experiments from PR 10:
//!
//! 3. **Result-page cache**: the mix is served once cold (misses) and then
//!    repeatedly warm (hits); the hit/miss p50 ratio is the cache's
//!    speedup. Both loops assert byte-identity along the way.
//! 4. **Zipfian skew**: a seeded Zipf(s≈1.1) stream over a 16-query mix
//!    against a deliberately tiny cache vs no cache — hit ratio and
//!    speedup under a realistic skewed workload with constant eviction.
//! 5. **Plan sharing**: term-overlapping queries submitted concurrently so
//!    one dispatch round batches them; `postings_shared > 0` proves the
//!    per-(doc, term) resolutions were reused, with identical bytes.
//!
//! Before timing anything, every distinct query in the mix is checked
//! byte-identical against sequential execution — a load bench that quietly
//! served different bytes would be measuring a bug. After the runs, the
//! client-side latency distribution is cross-checked against the server's
//! own `METRICS` exposition: both sides bucket through the same
//! `xsact_obs::Histogram`, so their percentiles must agree to within
//! bucket resolution.
//!
//! Usage: `cargo run --release -p xsact-bench --bin serve_load [--quick]`

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xsact::data::movies::qm_queries;
use xsact::obs::{Histogram, HistogramSnapshot};
use xsact::prelude::*;
use xsact::serve::ServeSnapshot;
use xsact_bench::harness::format_duration;
use xsact_bench::{emit_json, print_row, record, scaled, FIG4_SEED};

/// Renders a histogram-snapshot quantile (nanoseconds) for a table cell.
fn cell(nanos: u64) -> String {
    format_duration(Duration::from_nanos(nanos))
}

/// The query mix: the paper's QM1–QM8 movie workload texts.
fn query_mix() -> Vec<String> {
    qm_queries().into_iter().map(|(_, text)| text).collect()
}

/// Asserts the server returns sequential bytes for every query in the mix.
fn check_bytes(corpus: &Corpus, server: &CorpusServer, mix: &[String], k: usize) {
    let mut session = server.session();
    for text in mix {
        let served = session.query(text).expect("mix queries are non-empty");
        let sequential = corpus.query(text).expect("non-empty").ranking().render(k);
        assert_eq!(served.ranking.render(k), sequential, "served bytes diverged for {text:?}");
    }
}

/// Closed loop: each of `clients` threads issues `per_client` queries
/// back-to-back, recording into one shared lock-free histogram. Returns
/// the latency distribution plus the wall time of the storm.
fn closed_loop(
    server: &CorpusServer,
    mix: &[String],
    clients: usize,
    per_client: usize,
) -> (HistogramSnapshot, Duration) {
    let latencies = Histogram::new();
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let latencies = &latencies;
            scope.spawn(move || {
                let mut session = server.session();
                for i in 0..per_client {
                    // Offset per client so concurrent threads mix
                    // coalescable and distinct queries.
                    let text = &mix[(i + c) % mix.len()];
                    let t = Instant::now();
                    session.query(text).expect("closed loop never overloads the queue");
                    latencies.record_duration(t.elapsed());
                }
            });
        }
    });
    (latencies.snapshot(), wall.elapsed())
}

/// One open-loop outcome: the latency distribution of served queries
/// (measured from the scheduled arrival) and how many submissions
/// admission control rejected.
struct OpenLoopOutcome {
    latencies: HistogramSnapshot,
    rejected: u64,
    wall: Duration,
}

/// Open loop at `rate` queries/second for `total` queries: a pacer thread
/// schedules arrivals on a fixed grid and `workers` threads execute them.
/// A full submission queue surfaces as a counted rejection, not a stall.
fn open_loop(server: &CorpusServer, mix: &[String], rate: u64, total: usize) -> OpenLoopOutcome {
    let workers = scaled(4, 2);
    let interval = Duration::from_nanos(1_000_000_000 / rate.max(1));
    let (tx, rx) = mpsc::channel::<(Instant, usize)>();
    let rx = Arc::new(std::sync::Mutex::new(rx));
    let latencies = Histogram::new();
    let wall = Instant::now();
    let mut rejected = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let latencies = &latencies;
                scope.spawn(move || {
                    let mut session = server.session();
                    let mut rejected = 0u64;
                    loop {
                        let job = rx.lock().expect("job queue lock poisoned").recv();
                        let Ok((scheduled, query)) = job else { break };
                        match session.query(&mix[query]) {
                            Ok(_) => latencies.record_duration(scheduled.elapsed()),
                            Err(XsactError::Overloaded { .. }) => rejected += 1,
                            Err(e) => panic!("unexpected serving error: {e}"),
                        }
                    }
                    rejected
                })
            })
            .collect();
        // The pacer: arrival i is due at start + i·interval, whether or not
        // earlier queries have finished (that is what "offered load" means).
        let start = Instant::now();
        for i in 0..total {
            let due = start + interval * i as u32;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            tx.send((due, i % mix.len())).expect("workers outlive the pacer");
        }
        drop(tx);
        for handle in handles {
            rejected += handle.join().expect("worker panicked");
        }
    });
    OpenLoopOutcome { latencies: latencies.snapshot(), rejected, wall: wall.elapsed() }
}

/// Pulls one quantile sample (integer nanoseconds) out of a Prometheus
/// text exposition — the same bytes the `METRICS` verb serves.
fn scrape_quantile(exposition: &str, metric: &str, q: &str) -> u64 {
    let needle = format!("{metric}{{quantile=\"{q}\"}} ");
    exposition
        .lines()
        .find_map(|line| line.strip_prefix(needle.as_str()))
        .unwrap_or_else(|| panic!("{needle}<value> missing from exposition:\n{exposition}"))
        .trim()
        .parse()
        .expect("quantile samples are integer nanoseconds")
}

/// Cross-checks the client-side latency distribution against the server's
/// own end-to-end histogram, scraped from the `METRICS` exposition. Both
/// sides measure (almost) the same interval through the same √2-bucketed
/// histogram, so each quantile must land within a few buckets — a factor
/// 2^1.5 covers three bucket boundaries plus the client's call overhead.
fn cross_check(client: &HistogramSnapshot, exposition: &str) {
    let server_count: u64 = exposition
        .lines()
        .find_map(|l| l.strip_prefix("xsact_e2e_ns_count "))
        .expect("e2e count present")
        .trim()
        .parse()
        .expect("count is an integer");
    assert_eq!(client.count, server_count, "server recorded one e2e observation per client query");
    for (label, client_q, q) in [("p50", client.p50(), "0.5"), ("p99", client.p99(), "0.99")] {
        let server_q = scrape_quantile(exposition, "xsact_e2e_ns", q);
        let lo = client_q.min(server_q).max(1) as f64;
        let hi = client_q.max(server_q).max(1) as f64;
        assert!(
            hi / lo <= 2.0_f64.powf(1.5) + 1e-9,
            "{label} diverged past bucket resolution: client {} vs server {}",
            cell(client_q),
            cell(server_q)
        );
        println!(
            "cross-check {label}: client {} vs server {} (within bucket resolution)",
            cell(client_q),
            cell(server_q)
        );
    }
}

/// Phase 3: the result-page cache. One cold pass over the mix (every
/// query a miss), then warm passes (every query a hit); the p50 ratio is
/// the cache's speedup, with bytes asserted identical throughout.
fn cache_phase(corpus: &Arc<Corpus>, mix: &[String], k: usize) {
    println!("result-page cache (cold pass = misses, warm passes = hits)");
    let server = CorpusServer::start(Arc::clone(corpus), ServeConfig::default());
    let expected: Vec<String> =
        mix.iter().map(|t| corpus.query(t).expect("non-empty").ranking().render(k)).collect();
    let mut session = server.session();
    let miss = Histogram::new();
    for (text, want) in mix.iter().zip(&expected) {
        let t = Instant::now();
        let answer = session.query(text).expect("mix queries are non-empty");
        miss.record_duration(t.elapsed());
        assert_eq!(&answer.ranking.render(k), want, "cold bytes diverged for {text:?}");
    }
    let hit = Histogram::new();
    for _ in 0..scaled(50, 4) {
        for (text, want) in mix.iter().zip(&expected) {
            let t = Instant::now();
            let answer = session.query(text).expect("mix queries are non-empty");
            hit.record_duration(t.elapsed());
            assert_eq!(&answer.ranking.render(k), want, "cached bytes diverged for {text:?}");
        }
    }
    server.join();
    let stats = server.stats();
    assert_eq!(stats.cache_misses, mix.len() as u64, "the cold pass misses exactly once per key");
    assert_eq!(stats.cache_hits, hit.snapshot().count, "every warm query hit");
    let (miss, hit) = (miss.snapshot(), hit.snapshot());
    let speedup = miss.p50() as f64 / hit.p50().max(1) as f64;
    record("serve/cache", "miss_p50_ns", miss.p50() as f64);
    record("serve/cache", "hit_p50_ns", hit.p50() as f64);
    record("serve/cache", "speedup_p50", speedup);
    record("serve/cache", "hits", stats.cache_hits as f64);
    record("serve/cache", "misses", stats.cache_misses as f64);
    println!(
        "miss p50 {}  hit p50 {}  speedup {speedup:.1}x  ({} hits / {} misses)
",
        cell(miss.p50()),
        cell(hit.p50()),
        stats.cache_hits,
        stats.cache_misses
    );
}

/// Deterministic Zipf(s) sampler over `n` ranks: cumulative weights
/// 1/r^s, inverted by a 53-bit uniform draw from the seeded StdRng.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.cumulative.iter().position(|&c| u < c).unwrap_or(self.cumulative.len() - 1)
    }
}

/// Phase 4: a seeded Zipfian-skewed stream over a 16-query mix, served by
/// a deliberately tiny cache (4 pages — the tail evicts constantly) and
/// by no cache at all. The hit ratio the skew buys and the wall-clock
/// speedup it translates to are recorded side by side.
fn zipf_phase(corpus: &Arc<Corpus>, _k: usize) {
    let mut mix = query_mix();
    mix.extend(
        [
            "drama wedding",
            "comedy love",
            "action space",
            "thriller ghost",
            "romance hero",
            "war detective",
            "scifi soldier",
            "horror family",
        ]
        .map(str::to_owned),
    );
    let zipf = Zipf::new(mix.len(), 1.1);
    let total = scaled(2_000, 64);
    // The identical seeded stream drives both servers.
    let stream: Vec<usize> = {
        let mut rng = StdRng::seed_from_u64(FIG4_SEED);
        (0..total).map(|_| zipf.sample(&mut rng)).collect()
    };
    println!("zipfian mix (s=1.1, {} keys, {total} queries, 4-page cache vs none)", mix.len());
    let run = |entries: usize| -> (HistogramSnapshot, Duration, ServeSnapshot) {
        let server = CorpusServer::start(
            Arc::clone(corpus),
            ServeConfig { cache_entries: entries, ..ServeConfig::default() },
        );
        let mut session = server.session();
        let latencies = Histogram::new();
        let wall = Instant::now();
        for &i in &stream {
            let t = Instant::now();
            session.query(&mix[i]).expect("mix queries are non-empty");
            latencies.record_duration(t.elapsed());
        }
        let wall = wall.elapsed();
        server.join();
        (latencies.snapshot(), wall, server.stats())
    };
    let (cached, cached_wall, stats) = run(4);
    let (uncached, uncached_wall, _) = run(0);
    let hit_ratio = stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64;
    let speedup = uncached_wall.as_secs_f64() / cached_wall.as_secs_f64().max(1e-9);
    record("serve/zipf", "hit_ratio", hit_ratio);
    record("serve/zipf", "evictions", stats.cache_evictions as f64);
    record("serve/zipf", "cached_p50_ns", cached.p50() as f64);
    record("serve/zipf", "uncached_p50_ns", uncached.p50() as f64);
    record("serve/zipf", "wall_speedup", speedup);
    println!(
        "hit ratio {:.0}%  p50 {} vs {}  wall {} vs {}  speedup {speedup:.1}x
",
        hit_ratio * 100.0,
        cell(cached.p50()),
        cell(uncached.p50()),
        format_duration(cached_wall),
        format_duration(uncached_wall),
    );
}

/// Phase 5: batch-level plan sharing. Term-overlapping queries are
/// released through a barrier so one dispatch round batches them (retried
/// until the timing works out); the server's `postings_shared` counter
/// then proves each repeated term's posting lists were resolved once per
/// (document, term) — and the bytes are checked against sequential
/// execution as always.
fn sharing_phase(corpus: &Arc<Corpus>, k: usize) {
    // Every query shares the term "drama"; the second terms differ, so
    // the batch coalesces nothing and shares everything it can.
    let overlapping =
        ["drama family", "drama wedding", "drama hero", "drama detective", "drama love"];
    let expected: Vec<String> = overlapping
        .iter()
        .map(|t| corpus.query(t).expect("non-empty").ranking().render(k))
        .collect();
    // Caching would satisfy repeats without executing, so it is off here.
    let server = CorpusServer::start(
        Arc::clone(corpus),
        ServeConfig { cache_entries: 0, ..ServeConfig::default() },
    );
    let mut shared = 0;
    for _attempt in 0..50 {
        let barrier = std::sync::Barrier::new(overlapping.len());
        std::thread::scope(|scope| {
            for (i, text) in overlapping.iter().enumerate() {
                let server = &server;
                let barrier = &barrier;
                let expected = &expected;
                scope.spawn(move || {
                    let mut session = server.session();
                    barrier.wait();
                    let answer = session.query(text).expect("mix queries are non-empty");
                    assert_eq!(
                        answer.ranking.render(k),
                        expected[i],
                        "shared-plan bytes diverged for {text:?}"
                    );
                });
            }
        });
        shared = server.stats().postings_shared;
        if shared > 0 {
            break;
        }
    }
    server.join();
    assert!(shared > 0, "an overlapping batch never formed in 50 attempts");
    record("serve/plan_sharing", "postings_shared", shared as f64);
    println!(
        "plan sharing: {shared} posting entries resolved once and reused
"
    );
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("machine parallelism: {cores} core{}", if cores == 1 { "" } else { "s" });

    let docs = scaled(8, 2);
    let movies = scaled(120, 20);
    let shards = cores.min(docs);
    let t = Instant::now();
    let corpus = Arc::new(Corpus::synthetic_movies(docs, movies, FIG4_SEED).with_shards(shards));
    println!(
        "corpus: {docs} documents x {movies} movies, {shards} shards (built in {:.1?})",
        t.elapsed()
    );
    // The load phases measure the *execution* path — batching under
    // concurrency — so the result-page cache is disabled here; the cache
    // phases below measure it separately against this same corpus.
    let config = ServeConfig { cache_entries: 0, ..ServeConfig::default() };
    let k = config.default_top;
    let server = CorpusServer::start(Arc::clone(&corpus), config);
    let mix = query_mix();
    check_bytes(&corpus, &server, &mix, k);
    println!("byte-identity check passed for {} queries\n", mix.len());

    // ---- closed loop -----------------------------------------------------
    let per_client = scaled(200, 8);
    println!("closed loop ({per_client} queries per client)");
    let widths = [8, 10, 12, 12, 12];
    print_row(
        &["clients".into(), "queries".into(), "p50".into(), "p99".into(), "qps".into()],
        &widths,
    );
    for clients in [1usize, 4] {
        let (latencies, wall) = closed_loop(&server, &mix, clients, per_client);
        record(&format!("serve/closed_loop/{clients}_clients"), "p50_ns", latencies.p50() as f64);
        record(&format!("serve/closed_loop/{clients}_clients"), "p99_ns", latencies.p99() as f64);
        record(
            &format!("serve/closed_loop/{clients}_clients"),
            "qps",
            latencies.count as f64 / wall.as_secs_f64().max(1e-9),
        );
        print_row(
            &[
                clients.to_string(),
                latencies.count.to_string(),
                cell(latencies.p50()),
                cell(latencies.p99()),
                format!("{:.0}", latencies.count as f64 / wall.as_secs_f64().max(1e-9)),
            ],
            &widths,
        );
    }
    println!();

    // ---- open loop -------------------------------------------------------
    let total = scaled(400, 16);
    println!("open loop ({total} offered queries per rate; latency from scheduled arrival)");
    let widths = [10, 10, 12, 12, 12, 10];
    print_row(
        &[
            "rate/s".into(),
            "served".into(),
            "p50".into(),
            "p99".into(),
            "qps".into(),
            "rejected".into(),
        ],
        &widths,
    );
    for rate in [scaled(500, 200) as u64, scaled(2_000, 800) as u64] {
        let outcome = open_loop(&server, &mix, rate, total);
        let latencies = outcome.latencies;
        record(&format!("serve/open_loop/{rate}_rps"), "served", latencies.count as f64);
        record(&format!("serve/open_loop/{rate}_rps"), "rejected", outcome.rejected as f64);
        print_row(
            &[
                rate.to_string(),
                latencies.count.to_string(),
                cell(latencies.p50()),
                cell(latencies.p99()),
                format!("{:.0}", latencies.count as f64 / outcome.wall.as_secs_f64().max(1e-9)),
                outcome.rejected.to_string(),
            ],
            &widths,
        );
    }
    println!();

    // ---- client vs server percentile cross-check -------------------------
    // A fresh server so its e2e histogram holds exactly this phase's
    // traffic; the client histogram and the scraped METRICS exposition
    // must then tell the same story.
    println!("percentile cross-check (client histogram vs METRICS exposition)");
    let check_server = CorpusServer::start(Arc::clone(&corpus), ServeConfig::default());
    let (client, _) = closed_loop(&check_server, &mix, 2, scaled(100, 8));
    check_server.join();
    cross_check(&client, &check_server.metrics());
    println!();

    // ---- result-page cache: hit vs miss ----------------------------------
    cache_phase(&corpus, &mix, k);

    // ---- Zipfian-skewed query mix ----------------------------------------
    zipf_phase(&corpus, k);

    // ---- batch-level plan sharing ----------------------------------------
    sharing_phase(&corpus, k);

    println!("server counters after the runs:");
    server.join();
    let stats = server.stats();
    println!("{stats}");
    // Persist the robustness counters next to the latency numbers: a load
    // run that silently rejected work (or restarted a shard) would
    // otherwise report flattering percentiles over a shrunken population.
    for (key, value) in [
        ("queries_served", stats.queries_served),
        ("rejected_overload", stats.rejected_overload),
        ("rejected_budget", stats.rejected_budget),
        ("rejected_deadline", stats.rejected_deadline),
        ("shard_failed", stats.shard_failed),
        ("shard_restarts", stats.shard_restarts),
        ("cache_hits", stats.cache_hits),
        ("cache_misses", stats.cache_misses),
        ("cache_evictions", stats.cache_evictions),
        ("postings_shared", stats.postings_shared),
    ] {
        record("serve/counters", key, value as f64);
    }
    emit_json("serve_load");
}
