//! Figure 4 — effectiveness and efficiency of XSACT on the movie dataset.
//!
//! Regenerates both panels of the paper's Figure 4 over the eight queries
//! QM1–QM8:
//!
//! * **(a) Quality of DFSs** — total DoD achieved by the single-swap and
//!   multi-swap methods (snippet and greedy baselines added for context);
//! * **(b) Processing time** — wall-clock seconds per query for each
//!   method, measured on the preprocessed instance (preprocessing reported
//!   separately).
//!
//! Expected shape (paper §2): multi-swap DoD ≥ single-swap DoD with strict
//! wins on several queries; both methods well under a second per query;
//! single-swap usually faster, but multi-swap occasionally wins because it
//! converges in fewer rounds.
//!
//! Usage: `cargo run --release -p xsact-bench --bin fig4 [movies] [seed]`

use std::time::{Duration, Instant};
use xsact_bench::{
    emit_json, movie_workbench, prepare_qm_queries, print_row, record, FIG4_BOUND, FIG4_MOVIES,
    FIG4_RESULT_CAP, FIG4_SEED,
};
use xsact_core::{dod_total, run_algorithm, Algorithm};

fn main() {
    let mut args = std::env::args().skip(1);
    let movies: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| xsact_bench::scaled(FIG4_MOVIES, 60));
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(FIG4_SEED);

    println!("Figure 4 workload: {movies} movies (seed {seed}), result cap {FIG4_RESULT_CAP}, L = {FIG4_BOUND}, x = 10%");
    let t0 = Instant::now();
    let wb = movie_workbench(movies, seed);
    println!(
        "dataset + index built in {:?} ({} XML nodes, {} index terms)",
        t0.elapsed(),
        wb.document().len(),
        wb.engine().index().stats().terms
    );
    let t1 = Instant::now();
    let prepared = prepare_qm_queries(&wb, FIG4_RESULT_CAP, FIG4_BOUND);
    println!("search + feature extraction for 8 queries in {:?}\n", t1.elapsed());

    let algorithms = Algorithm::ALL;
    let widths = [6, 18, 8, 8, 8, 8, 8];

    // ---------------------------------------------------------- Figure 4(a)
    println!("Figure 4(a): quality of DFSs (total DoD per query)");
    let mut header = vec!["query".to_string(), "text".to_string(), "n".to_string()];
    header.extend(algorithms.iter().map(|a| a.name().to_string()));
    print_row(&header, &widths);
    for p in &prepared {
        let mut row = vec![
            p.label.to_string(),
            p.text.clone(),
            p.instance.as_ref().map_or(0, |i| i.result_count()).to_string(),
        ];
        match &p.instance {
            Some(inst) => {
                for algo in algorithms {
                    let (set, _) = run_algorithm(inst, algo);
                    row.push(dod_total(inst, &set).to_string());
                }
            }
            None => row.extend(std::iter::repeat_n("-".to_string(), algorithms.len())),
        }
        print_row(&row, &widths);
    }

    // ---------------------------------------------------------- Figure 4(b)
    println!("\nFigure 4(b): processing time per query (seconds)");
    let mut header = vec!["query".to_string(), "text".to_string(), "n".to_string()];
    header.extend(algorithms.iter().map(|a| a.name().to_string()));
    let twidths = [6, 18, 8, 10, 10, 10, 10];
    print_row(&header, &twidths);
    for p in &prepared {
        let mut row = vec![
            p.label.to_string(),
            p.text.clone(),
            p.instance.as_ref().map_or(0, |i| i.result_count()).to_string(),
        ];
        match &p.instance {
            Some(inst) => {
                for algo in algorithms {
                    let elapsed = time_algorithm(inst, algo);
                    row.push(format!("{:.6}", elapsed.as_secs_f64()));
                }
            }
            None => row.extend(std::iter::repeat_n("-".to_string(), algorithms.len())),
        }
        print_row(&row, &twidths);
    }

    // ------------------------------------------------------- shape checks
    println!("\nshape checks (paper claims):");
    let mut multi_wins = 0;
    let mut single_never_above = true;
    let mut all_fast = true;
    for p in &prepared {
        let Some(inst) = &p.instance else { continue };
        let (s, _) = run_algorithm(inst, Algorithm::SingleSwap);
        let (m, _) = run_algorithm(inst, Algorithm::MultiSwap);
        let (sd, md) = (dod_total(inst, &s), dod_total(inst, &m));
        record(&format!("fig4a/single_swap/{}", p.label), "dod", f64::from(sd));
        record(&format!("fig4a/multi_swap/{}", p.label), "dod", f64::from(md));
        if md > sd {
            multi_wins += 1;
        }
        if sd > md {
            single_never_above = false;
        }
        if time_algorithm(inst, Algorithm::MultiSwap) > Duration::from_secs(1) {
            all_fast = false;
        }
    }
    println!("  multi-swap DoD >= single-swap DoD on every query: {single_never_above}");
    println!("  queries where multi-swap strictly wins: {multi_wins}");
    println!("  every query processed in < 1 s: {all_fast}");
    emit_json("fig4");
}

/// Median wall-clock time of one algorithm on one instance (5 samples, or
/// a single one in quick mode).
fn time_algorithm(inst: &xsact_core::Instance, algo: Algorithm) -> Duration {
    let mut samples: Vec<Duration> = (0..xsact_bench::scaled(5, 1))
        .map(|_| {
            let t = Instant::now();
            let (set, _) = run_algorithm(inst, algo);
            std::hint::black_box(&set);
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}
