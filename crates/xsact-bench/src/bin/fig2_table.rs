//! Figure 2 — the XSACT comparison table for the results of Figure 1, plus
//! the worked-example DoD numbers from §2 of the paper:
//!
//! * snippet DFSs (the Figure 1 snippets): DoD = 2 (only Product:Name and
//!   Pro:Compact differentiate; rating 4.2 vs 4.1 is within the 10%
//!   threshold);
//! * XSACT multi-swap DFSs: DoD = 5 ("three more feature types become
//!   comparable").
//!
//! Usage: `cargo run -p xsact-bench --bin fig2_table`

use xsact::prelude::*;
use xsact_bench::{emit_json, record};
use xsact_data::fixtures;

fn main() -> Result<(), XsactError> {
    let wb = Workbench::from_document(fixtures::figure1_document());
    let pipeline = wb.query(fixtures::PAPER_QUERY)?;

    let snippet =
        pipeline.clone().size_bound(fixtures::SNIPPET_BOUND).compare(Algorithm::Snippet)?;
    println!(
        "snippet DFSs (eXtract-style, L = {}): DoD = {}   [paper: 2]",
        fixtures::SNIPPET_BOUND,
        snippet.dod()
    );
    record("fig2/snippet", "dod", f64::from(snippet.dod()));
    println!("{}", snippet.table());

    let table = pipeline.clone().size_bound(fixtures::TABLE_BOUND);
    for algorithm in [Algorithm::SingleSwap, Algorithm::MultiSwap] {
        let outcome = table.compare(algorithm)?;
        println!(
            "{} DFSs (L = {}): DoD = {}   [paper, multi-swap: 5]",
            algorithm.name(),
            fixtures::TABLE_BOUND,
            outcome.dod()
        );
        record(&format!("fig2/{}", algorithm.name()), "dod", f64::from(outcome.dod()));
        if algorithm == Algorithm::MultiSwap {
            println!("{}", outcome.table());
        }
    }

    match table.compare(Algorithm::Exhaustive { limit: 5_000_000 }) {
        Ok(opt) => println!(
            "{} optimum at L = {}: DoD = {}",
            opt.algorithm.name(),
            fixtures::TABLE_BOUND,
            opt.dod()
        ),
        Err(XsactError::ExhaustiveLimitExceeded { limit }) => {
            println!("exhaustive oracle skipped (> {limit} combinations)")
        }
        Err(other) => return Err(other),
    }
    emit_json("fig2_table");
    Ok(())
}
