//! Figure 2 — the XSACT comparison table for the results of Figure 1, plus
//! the worked-example DoD numbers from §2 of the paper:
//!
//! * snippet DFSs (the Figure 1 snippets): DoD = 2 (only Product:Name and
//!   Pro:Compact differentiate; rating 4.2 vs 4.1 is within the 10%
//!   threshold);
//! * XSACT multi-swap DFSs: DoD = 5 ("three more feature types become
//!   comparable").
//!
//! Usage: `cargo run -p xsact-bench --bin fig2_table`

use xsact_core::{Algorithm, Comparison};
use xsact_data::fixtures;
use xsact_entity::ResultFeatures;
use xsact_index::{Query, SearchEngine};

fn main() {
    let doc = fixtures::figure1_document();
    let engine = SearchEngine::build(doc);
    let results = engine.search(&Query::parse(fixtures::PAPER_QUERY));
    let features: Vec<ResultFeatures> =
        results.iter().map(|r| engine.extract_features(r)).collect();

    let snippet = Comparison::new(&features)
        .size_bound(fixtures::SNIPPET_BOUND)
        .run(Algorithm::Snippet);
    println!(
        "snippet DFSs (eXtract-style, L = {}): DoD = {}   [paper: 2]",
        fixtures::SNIPPET_BOUND,
        snippet.dod()
    );
    println!("{}", snippet.table());

    for algorithm in [Algorithm::SingleSwap, Algorithm::MultiSwap] {
        let outcome = Comparison::new(&features)
            .size_bound(fixtures::TABLE_BOUND)
            .run(algorithm);
        println!(
            "{} DFSs (L = {}): DoD = {}   [paper, multi-swap: 5]",
            algorithm.name(),
            fixtures::TABLE_BOUND,
            outcome.dod()
        );
        if algorithm == Algorithm::MultiSwap {
            println!("{}", outcome.table());
        }
    }

    let opt = Comparison::new(&features)
        .size_bound(fixtures::TABLE_BOUND)
        .run_exhaustive(5_000_000);
    if let Some(opt) = opt {
        println!("exhaustive optimum at L = {}: DoD = {}", fixtures::TABLE_BOUND, opt.dod());
    }
}
