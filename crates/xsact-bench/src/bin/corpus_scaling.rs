//! EXT-CORPUS — scaling of the sharded corpus engine.
//!
//! Two sweeps over synthetic movie fleets:
//!
//! 1. **Shard count** on a fixed corpus: wall-clock of the full corpus
//!    query (fan-out + per-document ranked search + k-way merge) as the
//!    shard count grows, with the speedup over the single-shard baseline.
//!    Expected shape: near-linear until shards ≈ cores, flat after (empty
//!    or tiny shards cost nothing, but cannot help either).
//! 2. **Document count** at fixed shard counts {1, cores}: the multi-shard
//!    advantage should widen as the corpus grows, since per-query fixed
//!    costs amortise.
//!
//! Every run asserts the merged rankings are identical across shard
//! counts before timing anything — a bench that quietly compared different
//! rankings would be measuring a bug.
//!
//! Usage: `cargo run --release -p xsact-bench --bin corpus_scaling [--quick]`

use std::time::{Duration, Instant};
use xsact::prelude::*;
use xsact_bench::{emit_json, print_row, record, scaled, FIG4_SEED};

/// Best-of-`reps` wall-clock of one full corpus query (search is re-run,
/// the merged ranking is rebuilt; the feature cache plays no part here).
/// A fresh `CorpusQuery` per rep — the query memoizes its ranking, and
/// the fan-out is exactly what this sweep measures.
fn time_ranking(corpus: &Corpus, query: &str, reps: usize) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut hits = 0;
    for _ in 0..reps.max(1) {
        let q = corpus.query(query).expect("bench query is non-empty");
        let t = Instant::now();
        let ranking = q.ranking();
        let elapsed = t.elapsed();
        std::hint::black_box(&ranking);
        best = best.min(elapsed);
        hits = ranking.hits.len();
    }
    (best, hits)
}

fn check_determinism(corpus: &mut Corpus, query: &str, shard_counts: &[usize]) {
    let mut baseline: Option<String> = None;
    for &shards in shard_counts {
        corpus.set_shards(shards);
        let rendered = corpus.query(query).expect("non-empty").ranking().render(usize::MAX);
        match &baseline {
            Some(b) => assert_eq!(*b, rendered, "ranking changed at {shards} shards"),
            None => baseline = Some(rendered),
        }
    }
}

fn sweep_shard_count(query: &str, reps: usize) {
    let docs = scaled(8, 2);
    let movies = scaled(200, 20);
    println!("sweep 1: shard count ({docs} documents x {movies} movies, query {query:?})");
    let t = Instant::now();
    let mut corpus = Corpus::synthetic_movies(docs, movies, FIG4_SEED);
    println!("  corpus built in {:.1?}", t.elapsed());
    let shard_counts: &[usize] = &[1, 2, 4, 8][..scaled(4, 2)];
    check_determinism(&mut corpus, query, shard_counts);
    let widths = [8, 8, 14, 10];
    print_row(&["shards".into(), "hits".into(), "best".into(), "speedup".into()], &widths);
    let mut baseline = Duration::ZERO;
    for &shards in shard_counts {
        corpus.set_shards(shards);
        let (best, hits) = time_ranking(&corpus, query, reps);
        if shards == 1 {
            baseline = best;
        }
        record(&format!("corpus/shard_sweep/{shards}_shards"), "best_ns", best.as_nanos() as f64);
        print_row(
            &[
                shards.to_string(),
                hits.to_string(),
                format!("{best:.1?}"),
                format!("{:.2}x", baseline.as_secs_f64() / best.as_secs_f64().max(1e-12)),
            ],
            &widths,
        );
    }
    println!();
}

fn sweep_document_count(query: &str, reps: usize) {
    let movies = scaled(100, 20);
    let max_shards = std::thread::available_parallelism().map_or(4, usize::from);
    println!(
        "sweep 2: document count ({movies} movies each, 1 vs {max_shards} shards, query {query:?})"
    );
    let widths = [6, 8, 14, 14, 10];
    print_row(
        &["docs".into(), "hits".into(), "t_1shard".into(), "t_sharded".into(), "speedup".into()],
        &widths,
    );
    for &docs in &[2usize, 4, 8, 16][..scaled(4, 2)] {
        let mut corpus = Corpus::synthetic_movies(docs, movies, FIG4_SEED);
        check_determinism(&mut corpus, query, &[1, max_shards]);
        corpus.set_shards(1);
        let (sequential, hits) = time_ranking(&corpus, query, reps);
        corpus.set_shards(max_shards);
        let (sharded, _) = time_ranking(&corpus, query, reps);
        print_row(
            &[
                docs.to_string(),
                hits.to_string(),
                format!("{sequential:.1?}"),
                format!("{sharded:.1?}"),
                format!("{:.2}x", sequential.as_secs_f64() / sharded.as_secs_f64().max(1e-12)),
            ],
            &widths,
        );
    }
    println!();
}

fn main() {
    let query = "drama family";
    let reps = scaled(7, 1);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("machine parallelism: {cores} core{}", if cores == 1 { "" } else { "s" });
    if cores == 1 {
        println!("(single core: expect speedup ~1.0x — the sweep then measures sharding overhead)");
    }
    println!();
    sweep_shard_count(query, reps);
    sweep_document_count(query, reps);
    emit_json("corpus_scaling");
}
