//! EXT-SCALE — scaling sweeps beyond the paper's evaluation.
//!
//! Three sweeps, each printing one table:
//!
//! 1. **Result count n** (the user compares more results): DoD grows ~n²,
//!    runtime grows with the per-round `O(n² · m)` weight passes.
//! 2. **Size bound L**: DoD grows with the budget until every shared
//!    differentiable type fits, then saturates.
//! 3. **Dataset size** (movies): index build time and query latency of the
//!    search substrate.
//!
//! Usage: `cargo run --release -p xsact-bench --bin scaling [--quick]`

use std::time::Instant;
use xsact_bench::{
    emit_json, movie_workbench, prepare_qm_queries, print_row, record, scaled, FIG4_SEED,
};
use xsact_core::{dod_total, run_algorithm, Algorithm};
use xsact_data::movies::{qm_queries, MovieGenConfig, MoviesGen};
use xsact_index::{Query, SearchEngine};

fn main() {
    sweep_result_count();
    sweep_size_bound();
    sweep_dataset_size();
    emit_json("scaling");
}

fn sweep_result_count() {
    println!("sweep 1: number of compared results n (QM1, L = 6)");
    let widths = [4, 10, 10, 12, 12, 14, 14];
    print_row(
        &[
            "n".into(),
            "single".into(),
            "multi".into(),
            "upper".into(),
            "t_single".into(),
            "t_multi".into(),
            "rounds_m".into(),
        ],
        &widths,
    );
    let wb = movie_workbench(scaled(400, 80), FIG4_SEED);
    for n in &[2usize, 4, 6, 8, 12, 16][..scaled(6, 2)] {
        let n = *n;
        let prepared = prepare_qm_queries(&wb, n, 6);
        let Some(inst) = &prepared[0].instance else { continue };
        let t = Instant::now();
        let (s, _) = run_algorithm(inst, Algorithm::SingleSwap);
        let t_single = t.elapsed();
        let t = Instant::now();
        let (m, stats) = run_algorithm(inst, Algorithm::MultiSwap);
        let t_multi = t.elapsed();
        print_row(
            &[
                inst.result_count().to_string(),
                dod_total(inst, &s).to_string(),
                dod_total(inst, &m).to_string(),
                xsact_core::dod_upper_bound(inst).to_string(),
                format!("{t_single:?}"),
                format!("{t_multi:?}"),
                stats.rounds.to_string(),
            ],
            &widths,
        );
    }
    println!();
}

fn sweep_size_bound() {
    println!("sweep 2: size bound L (QM4, 6 results)");
    let widths = [4, 10, 10, 10, 10];
    print_row(
        &["L".into(), "snippet".into(), "greedy".into(), "single".into(), "multi".into()],
        &widths,
    );
    let wb = movie_workbench(scaled(400, 80), FIG4_SEED);
    for bound in &[1usize, 2, 3, 4, 6, 8, 12, 16, 24][..scaled(9, 2)] {
        let bound = *bound;
        let prepared = prepare_qm_queries(&wb, 6, bound);
        let Some(inst) = &prepared[3].instance else { continue };
        let mut row = vec![bound.to_string()];
        for algo in Algorithm::ALL {
            let (set, _) = run_algorithm(inst, algo);
            row.push(dod_total(inst, &set).to_string());
        }
        print_row(&row, &widths);
    }
    println!();
}

fn sweep_dataset_size() {
    println!("sweep 3: dataset size (index build + QM query latency)");
    let widths = [8, 10, 14, 14, 14];
    print_row(
        &[
            "movies".into(),
            "nodes".into(),
            "build".into(),
            "avg_search".into(),
            "avg_results".into(),
        ],
        &widths,
    );
    for movies in &[100usize, 200, 400, 800, 1600][..scaled(5, 1)] {
        let movies = *movies;
        let t = Instant::now();
        let doc = MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() })
            .generate();
        let nodes = doc.len();
        let engine = SearchEngine::build(doc);
        let build = t.elapsed();
        let queries = qm_queries();
        let t = Instant::now();
        let mut total_results = 0usize;
        for (_, text) in &queries {
            total_results += engine.search(&Query::parse(text)).len();
        }
        let avg_search = t.elapsed() / queries.len() as u32;
        record(
            &format!("scaling/index_build/{movies}_movies"),
            "build_ns",
            build.as_nanos() as f64,
        );
        record(
            &format!("scaling/avg_search/{movies}_movies"),
            "avg_search_ns",
            avg_search.as_nanos() as f64,
        );
        print_row(
            &[
                movies.to_string(),
                nodes.to_string(),
                format!("{build:?}"),
                format!("{avg_search:?}"),
                format!("{:.1}", total_results as f64 / queries.len() as f64),
            ],
            &widths,
        );
    }
}
