//! EXT-ABL — ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Threshold x**: how the differentiability threshold shapes the DoD
//!    (paper: "empirically set to 10%").
//! 2. **Optimality gap**: single-swap / multi-swap vs the exhaustive
//!    optimum on small random instances (the problem is NP-hard; the local
//!    criteria are heuristics).
//! 3. **Restart ablation**: what each of multi-swap's starting points
//!    contributes.
//! 4. **Divergence census**: on how many random instances the two local
//!    optimality criteria actually produce different DoD.
//!
//! Usage: `cargo run --release -p xsact-bench --bin ablation`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xsact_bench::{
    emit_json, movie_workbench, prepare_qm_queries, print_row, record, scaled, FIG4_BOUND,
    FIG4_RESULT_CAP, FIG4_SEED,
};
use xsact_core::{
    dod_total, exhaustive, greedy_set, multi_swap_from, run_algorithm, single_swap_from,
    snippet_set, Algorithm, DfsConfig, Instance,
};
use xsact_entity::{FeatureType, ResultFeatures};

fn main() {
    threshold_sweep();
    optimality_gap();
    restart_ablation();
    divergence_census();
    annealing_headroom();
    interestingness_tradeoff();
    emit_json("ablation");
}

fn threshold_sweep() {
    println!("ablation 1: differentiability threshold x (QM1, 6 results, L = 6)");
    let widths = [8, 10, 10];
    print_row(&["x (%)".into(), "multi".into(), "upper".into()], &widths);
    let wb = movie_workbench(scaled(400, 80), FIG4_SEED);
    let prepared = prepare_qm_queries(&wb, FIG4_RESULT_CAP, FIG4_BOUND);
    // Instances embed their threshold at build time, so recall the QM1
    // features (already cached by the preparation above) and rebuild per x.
    let feats: Vec<ResultFeatures> = wb
        .query(&prepared[0].text)
        .expect("QM1 is non-empty")
        .take(FIG4_RESULT_CAP)
        .features()
        .expect("QM1 matches the 400-movie dataset");
    for x in [0.0f64, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 400.0] {
        let inst = Instance::build(&feats, DfsConfig { size_bound: FIG4_BOUND, threshold_pct: x });
        let (m, _) = run_algorithm(&inst, Algorithm::MultiSwap);
        print_row(
            &[
                format!("{x}"),
                dod_total(&inst, &m).to_string(),
                xsact_core::dod_upper_bound(&inst).to_string(),
            ],
            &widths,
        );
    }
    println!();
}

fn random_instance(rng: &mut StdRng) -> Instance {
    let n = rng.random_range(2..4usize);
    let ents = rng.random_range(1..3usize);
    let results: Vec<ResultFeatures> = (0..n)
        .map(|i| {
            let mut triplets = Vec::new();
            for e in 0..ents {
                for a in 0..4usize {
                    if rng.random_bool(0.7) {
                        let count = [1u32, 1, 2, 3, 5, 8][rng.random_range(0..6)];
                        let value = if rng.random_bool(0.4) {
                            "const".to_string()
                        } else {
                            format!("v{}", rng.random_range(0..3u32))
                        };
                        triplets.push((
                            FeatureType::new(format!("e{e}"), format!("a{a}")),
                            value,
                            count,
                        ));
                    }
                }
            }
            ResultFeatures::from_raw(
                format!("r{i}"),
                (0..ents).map(|e| (format!("e{e}"), 10u32)),
                triplets,
            )
        })
        .collect();
    let bound = rng.random_range(1..5usize);
    Instance::build(&results, DfsConfig { size_bound: bound, threshold_pct: 10.0 })
}

fn optimality_gap() {
    println!("ablation 2: optimality gap vs exhaustive optimum (random small instances)");
    let mut rng = StdRng::seed_from_u64(2010);
    let (mut s_opt, mut m_opt, mut g_opt, mut total) = (0u32, 0u32, 0u32, 0u32);
    let (mut s_gap, mut m_gap, mut g_gap) = (0u32, 0u32, 0u32);
    for _ in 0..scaled(500, 25) {
        let inst = random_instance(&mut rng);
        let Some((_, opt)) = exhaustive(&inst, 200_000) else { continue };
        total += 1;
        let dod_of = |algo| {
            let (set, _) = run_algorithm(&inst, algo);
            dod_total(&inst, &set)
        };
        let (s, m, g) = (
            dod_of(Algorithm::SingleSwap),
            dod_of(Algorithm::MultiSwap),
            dod_of(Algorithm::Greedy),
        );
        if s == opt {
            s_opt += 1;
        }
        if m == opt {
            m_opt += 1;
        }
        if g == opt {
            g_opt += 1;
        }
        s_gap += opt - s;
        m_gap += opt - m;
        g_gap += opt - g;
    }
    println!("  instances with a feasible oracle: {total}");
    println!("  greedy      optimal on {g_opt}, total gap {g_gap}");
    println!("  single-swap optimal on {s_opt}, total gap {s_gap}");
    println!("  multi-swap  optimal on {m_opt}, total gap {m_gap}");
    record("ablation/optimality_gap/greedy", "total_gap", f64::from(g_gap));
    record("ablation/optimality_gap/single_swap", "total_gap", f64::from(s_gap));
    record("ablation/optimality_gap/multi_swap", "total_gap", f64::from(m_gap));
    println!();
}

fn restart_ablation() {
    println!("ablation 3: contribution of multi-swap's starting points (QM1..QM8)");
    let widths = [6, 14, 14, 14, 12];
    print_row(
        &[
            "query".into(),
            "from greedy".into(),
            "from snippet".into(),
            "from single".into(),
            "best".into(),
        ],
        &widths,
    );
    let wb = movie_workbench(scaled(400, 80), FIG4_SEED);
    let prepared = prepare_qm_queries(&wb, FIG4_RESULT_CAP, FIG4_BOUND);
    for p in &prepared {
        let Some(inst) = &p.instance else { continue };
        let mut from_greedy = greedy_set(inst);
        multi_swap_from(inst, &mut from_greedy);
        let mut from_snippet = snippet_set(inst);
        multi_swap_from(inst, &mut from_snippet);
        let mut from_single = snippet_set(inst);
        single_swap_from(inst, &mut from_single);
        multi_swap_from(inst, &mut from_single);
        let dods = [
            dod_total(inst, &from_greedy),
            dod_total(inst, &from_snippet),
            dod_total(inst, &from_single),
        ];
        print_row(
            &[
                p.label.to_string(),
                dods[0].to_string(),
                dods[1].to_string(),
                dods[2].to_string(),
                dods.iter().max().expect("non-empty").to_string(),
            ],
            &widths,
        );
    }
    println!();
}

fn annealing_headroom() {
    println!("ablation 5: simulated annealing on top of multi-swap (future-work probe)");
    let widths = [6, 12, 12, 12];
    print_row(&["query".into(), "multi".into(), "annealed".into(), "upper".into()], &widths);
    let wb = movie_workbench(scaled(400, 80), FIG4_SEED);
    let prepared = prepare_qm_queries(&wb, FIG4_RESULT_CAP, FIG4_BOUND);
    for p in &prepared {
        let Some(inst) = &p.instance else { continue };
        let (multi, _) = run_algorithm(inst, Algorithm::MultiSwap);
        let (_, annealed) = xsact_core::anneal(
            inst,
            &xsact_core::AnnealingConfig {
                iterations: scaled(20_000, 500) as u32,
                ..Default::default()
            },
        );
        print_row(
            &[
                p.label.to_string(),
                dod_total(inst, &multi).to_string(),
                annealed.to_string(),
                xsact_core::dod_upper_bound(inst).to_string(),
            ],
            &widths,
        );
    }
    println!();
}

fn interestingness_tradeoff() {
    // A tight budget (L = 4) forces real choices; at the Figure 4 bound the
    // DoD-optimal selection is unique enough that the blend never fires.
    println!(
        "ablation 6: interestingness blending, (DoD, total interestingness) per lambda (L = 4)"
    );
    let widths = [6, 16, 16, 16];
    print_row(&["query".into(), "lambda 0".into(), "lambda 1".into(), "lambda 5".into()], &widths);
    let wb = movie_workbench(scaled(400, 80), FIG4_SEED);
    let prepared = prepare_qm_queries(&wb, FIG4_RESULT_CAP, 4);
    for p in &prepared {
        let Some(inst) = &p.instance else { continue };
        let mut row = vec![p.label.to_string()];
        for lambda in [0.0f64, 1.0, 5.0] {
            let set = xsact_core::interesting_set(inst, lambda);
            row.push(format!(
                "({}, {:.1})",
                dod_total(inst, &set),
                xsact_core::total_interestingness(inst, &set)
            ));
        }
        print_row(&row, &widths);
    }
    println!();
}

fn divergence_census() {
    println!("ablation 4: single-swap vs multi-swap divergence on random instances");
    let mut rng = StdRng::seed_from_u64(7);
    let (mut diverge, mut total_gap) = (0u32, 0u32);
    let census = scaled(2000, 50);
    for _ in 0..census {
        let inst = random_instance(&mut rng);
        let (s, _) = run_algorithm(&inst, Algorithm::SingleSwap);
        let (m, _) = run_algorithm(&inst, Algorithm::MultiSwap);
        let (sd, md) = (dod_total(&inst, &s), dod_total(&inst, &m));
        debug_assert!(md >= sd);
        if md > sd {
            diverge += 1;
            total_gap += md - sd;
        }
    }
    println!(
        "  multi-swap strictly better on {diverge}/{census} instances (total gap {total_gap})"
    );
    record("ablation/divergence_census", "diverging_instances", f64::from(diverge));
    record("ablation/divergence_census", "total_gap", f64::from(total_gap));
}
