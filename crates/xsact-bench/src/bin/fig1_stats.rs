//! Figure 1 — the two result fragments of query `{TomTom, GPS}` and their
//! statistics panels.
//!
//! Prints, for each of the paper's two results, the information Figure 1
//! shows: the number of reviews and the `ATTR : VALUE : # of occ` lines, in
//! significance order. The integration test `tests/paper_example.rs`
//! asserts these numbers equal the paper's.
//!
//! Usage: `cargo run -p xsact-bench --bin fig1_stats`

use xsact::prelude::*;
use xsact_bench::{emit_json, record};
use xsact_data::fixtures;

fn main() -> Result<(), XsactError> {
    let wb = Workbench::from_document(fixtures::figure1_document());
    let pipeline = wb.query(fixtures::PAPER_QUERY)?;
    let results = pipeline.results();
    println!("query {{TomTom, GPS}} on the Figure 1 dataset: {} results\n", results.len());
    record("fig1/paper_query", "results", results.len() as f64);

    for (i, rf) in pipeline.features()?.iter().enumerate() {
        println!("Result {} — {}", i + 1, rf.label);
        println!("  statistics (cf. Figure 1 right-hand panels):");
        for line in rf.stat_panel(8) {
            println!("    {line}");
        }
        println!();
    }

    // The fragment view: the first review subtree of result 1, as the
    // figure's tree diagram shows.
    let doc = wb.document();
    if let Some(reviews) = doc.child_by_tag(results[0].root, "reviews") {
        if let Some(first) = doc.child_elements(reviews).next() {
            println!("first review fragment of result 1 (cf. the tree in Figure 1):");
            println!("{}", xsact_xml::writer::write_subtree(doc, first));
        }
    }
    emit_json("fig1_stats");
    Ok(())
}
