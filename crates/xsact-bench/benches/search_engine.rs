//! Criterion benches for the keyword-search substrate: SLCA algorithms
//! (Indexed Lookup Eager vs the full-scan baseline), index construction and
//! end-to-end query latency.
//!
//! Run with `cargo bench -p xsact-bench --bench search_engine`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use xsact_bench::FIG4_SEED;
use xsact_data::movies::{qm_queries, MovieGenConfig, MoviesGen};
use xsact_index::{slca_full_scan, slca_indexed_lookup, InvertedIndex, Query, SearchEngine};
use xsact_xml::NodeId;

fn bench_slca_algorithms(c: &mut Criterion) {
    let doc = MoviesGen::new(MovieGenConfig {
        movies: 400,
        seed: FIG4_SEED,
        ..Default::default()
    })
    .generate();
    let idx = InvertedIndex::build(&doc);
    let mut group = c.benchmark_group("slca");
    group.measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    // QM1 (broad: long posting lists) and QM8 (narrow).
    for (label, text) in [&qm_queries()[0], &qm_queries()[7]] {
        let terms: Vec<String> = text.split_whitespace().map(str::to_owned).collect();
        let lists: Vec<&[NodeId]> = terms.iter().map(|t| idx.postings(t)).collect();
        group.bench_with_input(
            BenchmarkId::new("indexed_lookup_eager", label),
            &lists,
            |b, lists| b.iter(|| black_box(slca_indexed_lookup(&doc, lists))),
        );
        group.bench_with_input(
            BenchmarkId::new("full_scan", label),
            &lists,
            |b, lists| b.iter(|| black_box(slca_full_scan(&doc, lists))),
        );
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let doc = MoviesGen::new(MovieGenConfig {
        movies: 200,
        seed: FIG4_SEED,
        ..Default::default()
    })
    .generate();
    let mut group = c.benchmark_group("index");
    group
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20);
    group.bench_function("build_200_movies", |b| {
        b.iter(|| black_box(InvertedIndex::build(&doc)))
    });
    group.finish();
}

fn bench_query_end_to_end(c: &mut Criterion) {
    let doc = MoviesGen::new(MovieGenConfig {
        movies: 400,
        seed: FIG4_SEED,
        ..Default::default()
    })
    .generate();
    let engine = SearchEngine::build(doc);
    let mut group = c.benchmark_group("search");
    group.measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    for (label, text) in [&qm_queries()[0], &qm_queries()[7]] {
        let query = Query::parse(text);
        group.bench_with_input(BenchmarkId::new("engine_search", label), &query, |b, q| {
            b.iter(|| black_box(engine.search(q)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slca_algorithms, bench_index_build, bench_query_end_to_end);
criterion_main!(benches);
