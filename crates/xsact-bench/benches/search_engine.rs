//! Benches for the keyword-search substrate: SLCA algorithms (Indexed
//! Lookup Eager vs the full-scan baseline), index construction and
//! end-to-end query latency.
//!
//! Run with `cargo bench -p xsact-bench --bench search_engine`.
//! (Self-timing harness; criterion is unavailable in the offline build.)

use xsact_bench::harness::{bench, emit_json, format_bytes, quick_mode, record, stat};
use xsact_bench::{scaled, FIG4_SEED};
use xsact_data::movies::{qm_queries, MovieGenConfig, MoviesGen};
use xsact_index::{
    slca_full_scan, slca_indexed_lookup, InvertedIndex, Query, QueryPlan, ResultSemantics,
    SearchEngine,
};
use xsact_xml::NodeId;

fn bench_slca_algorithms() {
    let movies = scaled(400, 60);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    let idx = InvertedIndex::build(&doc);
    // QM1 (broad: long posting lists) and QM8 (narrow).
    for (label, text) in [&qm_queries()[0], &qm_queries()[7]] {
        let terms: Vec<String> = text.split_whitespace().map(str::to_owned).collect();
        let decoded: Vec<Vec<NodeId>> = terms.iter().map(|t| idx.postings(t).to_vec()).collect();
        let lists: Vec<&[NodeId]> = decoded.iter().map(Vec::as_slice).collect();
        bench("slca", &format!("indexed_lookup_eager/{label}"), || {
            slca_indexed_lookup(&doc, &lists)
        });
        bench("slca", &format!("full_scan/{label}"), || slca_full_scan(&doc, &lists));
    }
}

/// The packed-vs-flat sweep the `.xidx` v3 PR pins: frame decode
/// throughput, the anchored gallop over packed frames vs decoded flat
/// slices on all of QM1–QM8, and the resident-postings shrink.
fn bench_packed_vs_flat() {
    let movies = scaled(400, 60);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    let idx = InvertedIndex::build(&doc);

    // Decode throughput: unpack every posting list back to node ids.
    let total: usize = idx.dictionary().map(|(_, p)| p.len()).sum();
    let decode = bench("packed", "decode_all_postings", || {
        idx.dictionary().map(|(_, p)| p.iter().count()).sum::<usize>()
    });
    let per_entry = decode.median.as_nanos() as f64 / total.max(1) as f64;
    stat("packed", "decode_throughput", format!("{per_entry:.2} ns/posting ({total} postings)"));
    record("packed/decode_throughput", "ns_per_posting", per_entry);

    // Gallop: the streaming SLCA executor over packed frames vs the same
    // lists decoded to flat slices — the byte-identity invariant says the
    // probe counts match, so this isolates the frame-skip cost.
    for (label, text) in qm_queries().iter() {
        let query = Query::parse(text);
        let terms: Vec<String> = text.split_whitespace().map(str::to_owned).collect();
        let decoded: Vec<Vec<NodeId>> = terms.iter().map(|t| idx.postings(t).to_vec()).collect();
        let flat_refs: Vec<&[NodeId]> = decoded.iter().map(Vec::as_slice).collect();
        // Plans are built outside the timers: the comparison is the stream
        // (frame-skip gallop vs flat-slice gallop), not term hashing.
        let packed_plan = QueryPlan::new(&idx, &query);
        let flat_plan = QueryPlan::from_lists(flat_refs);
        bench("packed", &format!("gallop_packed/{label}"), || packed_plan.stream(&doc).count());
        bench("packed", &format!("gallop_flat/{label}"), || flat_plan.stream(&doc).count());
    }

    // Resident postings bytes: packed frames vs the flat u32 arena.
    let s = idx.stats();
    let ratio = s.flat_postings_bytes as f64 / s.packed_postings_bytes.max(1) as f64;
    stat(
        "packed",
        "resident_postings_bytes",
        format!(
            "{} packed vs {} flat ({ratio:.2}x smaller)",
            format_bytes(s.packed_postings_bytes),
            format_bytes(s.flat_postings_bytes),
        ),
    );
    record("packed/resident_postings", "packed_bytes", s.packed_postings_bytes as f64);
    record("packed/resident_postings", "flat_bytes", s.flat_postings_bytes as f64);
    record("packed/resident_postings", "shrink_ratio", ratio);
}

fn bench_index_build() {
    let movies = scaled(200, 40);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    bench("index", &format!("build_{movies}_movies"), || InvertedIndex::build(&doc));
}

/// Per-document resident bytes of the interned substrate versus the seed
/// layout (owned `String` tag + owned `Vec<u32>` Dewey per node), so the
/// representation win stays visible on every PR's bench smoke.
fn report_substrate_footprint() {
    let movies = scaled(200, 40);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    let idx = InvertedIndex::build(&doc);
    let s = doc.substrate_stats();
    let interned = s.interned_total();
    stat(
        "memory",
        &format!("document_substrate_{movies}_movies"),
        format!(
            "{} interned vs {} seed-layout ({:.2}x smaller; {} nodes, {} distinct symbols)",
            format_bytes(interned),
            format_bytes(s.seed_equivalent_bytes),
            s.seed_equivalent_bytes as f64 / interned.max(1) as f64,
            s.nodes,
            s.distinct_symbols,
        ),
    );
    stat(
        "memory",
        &format!("document_breakdown_{movies}_movies"),
        format!(
            "interner {} + dewey arena {} + text {} + node table {}",
            format_bytes(s.interner_bytes),
            format_bytes(s.dewey_bytes),
            format_bytes(s.text_bytes),
            format_bytes(s.node_table_bytes),
        ),
    );
    stat(
        "memory",
        &format!("inverted_index_{movies}_movies"),
        format!(
            "{} (term dictionary + delta-bit-packed posting frames)",
            format_bytes(idx.heap_bytes())
        ),
    );
    let i = idx.stats();
    stat(
        "memory",
        &format!("postings_{movies}_movies"),
        format!(
            "{} packed vs {} flat ({:.2}x smaller)",
            format_bytes(i.packed_postings_bytes),
            format_bytes(i.flat_postings_bytes),
            i.flat_postings_bytes as f64 / i.packed_postings_bytes.max(1) as f64,
        ),
    );
}

fn bench_query_end_to_end() {
    let movies = scaled(400, 60);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    let engine = SearchEngine::build(doc);
    for (label, text) in [&qm_queries()[0], &qm_queries()[7]] {
        let query = Query::parse(text);
        bench("search", &format!("engine_search/{label}"), || engine.search(&query));
    }
}

/// The top-k sweep: ranked end-to-end search at k ∈ {1, 10, 100, all}
/// (quick mode: {1, all}) over all of QM1–QM8 on the 200-movie document,
/// streaming executor vs the sort-everything oracle, with each query's
/// `ExecutorStats` printed next to the timings — the table the README's
/// "Query executor" section reports.
fn bench_topk_sweep() {
    let movies = scaled(200, 40);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    let engine = SearchEngine::build(doc);
    let ks: &[usize] = if quick_mode() { &[1, usize::MAX] } else { &[1, 10, 100, usize::MAX] };
    for (label, text) in qm_queries().iter() {
        let query = Query::parse(text);
        bench("topk", &format!("full_sort_oracle/{label}"), || engine.search_ranked(&query));
        for &k in ks {
            let k_label = if k == usize::MAX { "all".to_owned() } else { k.to_string() };
            bench("topk", &format!("search_top_k/{label}/k={k_label}"), || {
                engine.search_top_k(&query, k, ResultSemantics::Slca)
            });
        }
        let top = engine.search_top_k(&query, 10, ResultSemantics::Slca);
        stat(
            "topk",
            &format!("executor_stats/{label}/k=10"),
            format!(
                "{} results · {} postings scanned · {} gallop probes · {} candidates pruned",
                top.hits.len(),
                top.stats.postings_scanned,
                top.stats.gallop_probes,
                top.stats.candidates_pruned
            ),
        );
    }
}

fn main() {
    bench_slca_algorithms();
    bench_packed_vs_flat();
    bench_index_build();
    report_substrate_footprint();
    bench_query_end_to_end();
    bench_topk_sweep();
    emit_json("search_engine");
}
