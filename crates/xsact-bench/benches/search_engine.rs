//! Benches for the keyword-search substrate: SLCA algorithms (Indexed
//! Lookup Eager vs the full-scan baseline), index construction and
//! end-to-end query latency.
//!
//! Run with `cargo bench -p xsact-bench --bench search_engine`.
//! (Self-timing harness; criterion is unavailable in the offline build.)

use xsact_bench::harness::bench;
use xsact_bench::{scaled, FIG4_SEED};
use xsact_data::movies::{qm_queries, MovieGenConfig, MoviesGen};
use xsact_index::{slca_full_scan, slca_indexed_lookup, InvertedIndex, Query, SearchEngine};
use xsact_xml::NodeId;

fn bench_slca_algorithms() {
    let movies = scaled(400, 60);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    let idx = InvertedIndex::build(&doc);
    // QM1 (broad: long posting lists) and QM8 (narrow).
    for (label, text) in [&qm_queries()[0], &qm_queries()[7]] {
        let terms: Vec<String> = text.split_whitespace().map(str::to_owned).collect();
        let lists: Vec<&[NodeId]> = terms.iter().map(|t| idx.postings(t)).collect();
        bench("slca", &format!("indexed_lookup_eager/{label}"), || {
            slca_indexed_lookup(&doc, &lists)
        });
        bench("slca", &format!("full_scan/{label}"), || slca_full_scan(&doc, &lists));
    }
}

fn bench_index_build() {
    let movies = scaled(200, 40);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    bench("index", &format!("build_{movies}_movies"), || InvertedIndex::build(&doc));
}

fn bench_query_end_to_end() {
    let movies = scaled(400, 60);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    let engine = SearchEngine::build(doc);
    for (label, text) in [&qm_queries()[0], &qm_queries()[7]] {
        let query = Query::parse(text);
        bench("search", &format!("engine_search/{label}"), || engine.search(&query));
    }
}

fn main() {
    bench_slca_algorithms();
    bench_index_build();
    bench_query_end_to_end();
}
