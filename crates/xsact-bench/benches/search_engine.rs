//! Benches for the keyword-search substrate: SLCA algorithms (Indexed
//! Lookup Eager vs the full-scan baseline), index construction and
//! end-to-end query latency.
//!
//! Run with `cargo bench -p xsact-bench --bench search_engine`.
//! (Self-timing harness; criterion is unavailable in the offline build.)

use xsact_bench::harness::{bench, format_bytes, quick_mode, stat};
use xsact_bench::{scaled, FIG4_SEED};
use xsact_data::movies::{qm_queries, MovieGenConfig, MoviesGen};
use xsact_index::{
    slca_full_scan, slca_indexed_lookup, InvertedIndex, Query, ResultSemantics, SearchEngine,
};
use xsact_xml::NodeId;

fn bench_slca_algorithms() {
    let movies = scaled(400, 60);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    let idx = InvertedIndex::build(&doc);
    // QM1 (broad: long posting lists) and QM8 (narrow).
    for (label, text) in [&qm_queries()[0], &qm_queries()[7]] {
        let terms: Vec<String> = text.split_whitespace().map(str::to_owned).collect();
        let lists: Vec<&[NodeId]> = terms.iter().map(|t| idx.postings(t)).collect();
        bench("slca", &format!("indexed_lookup_eager/{label}"), || {
            slca_indexed_lookup(&doc, &lists)
        });
        bench("slca", &format!("full_scan/{label}"), || slca_full_scan(&doc, &lists));
    }
}

fn bench_index_build() {
    let movies = scaled(200, 40);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    bench("index", &format!("build_{movies}_movies"), || InvertedIndex::build(&doc));
}

/// Per-document resident bytes of the interned substrate versus the seed
/// layout (owned `String` tag + owned `Vec<u32>` Dewey per node), so the
/// representation win stays visible on every PR's bench smoke.
fn report_substrate_footprint() {
    let movies = scaled(200, 40);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    let idx = InvertedIndex::build(&doc);
    let s = doc.substrate_stats();
    let interned = s.interned_total();
    stat(
        "memory",
        &format!("document_substrate_{movies}_movies"),
        format!(
            "{} interned vs {} seed-layout ({:.2}x smaller; {} nodes, {} distinct symbols)",
            format_bytes(interned),
            format_bytes(s.seed_equivalent_bytes),
            s.seed_equivalent_bytes as f64 / interned.max(1) as f64,
            s.nodes,
            s.distinct_symbols,
        ),
    );
    stat(
        "memory",
        &format!("document_breakdown_{movies}_movies"),
        format!(
            "interner {} + dewey arena {} + text {} + node table {}",
            format_bytes(s.interner_bytes),
            format_bytes(s.dewey_bytes),
            format_bytes(s.text_bytes),
            format_bytes(s.node_table_bytes),
        ),
    );
    stat(
        "memory",
        &format!("inverted_index_{movies}_movies"),
        format!("{} (term dictionary + flat postings arena)", format_bytes(idx.heap_bytes())),
    );
}

fn bench_query_end_to_end() {
    let movies = scaled(400, 60);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    let engine = SearchEngine::build(doc);
    for (label, text) in [&qm_queries()[0], &qm_queries()[7]] {
        let query = Query::parse(text);
        bench("search", &format!("engine_search/{label}"), || engine.search(&query));
    }
}

/// The top-k sweep: ranked end-to-end search at k ∈ {1, 10, 100, all}
/// (quick mode: {1, all}) over all of QM1–QM8 on the 200-movie document,
/// streaming executor vs the sort-everything oracle, with each query's
/// `ExecutorStats` printed next to the timings — the table the README's
/// "Query executor" section reports.
fn bench_topk_sweep() {
    let movies = scaled(200, 40);
    let doc =
        MoviesGen::new(MovieGenConfig { movies, seed: FIG4_SEED, ..Default::default() }).generate();
    let engine = SearchEngine::build(doc);
    let ks: &[usize] = if quick_mode() { &[1, usize::MAX] } else { &[1, 10, 100, usize::MAX] };
    for (label, text) in qm_queries().iter() {
        let query = Query::parse(text);
        bench("topk", &format!("full_sort_oracle/{label}"), || engine.search_ranked(&query));
        for &k in ks {
            let k_label = if k == usize::MAX { "all".to_owned() } else { k.to_string() };
            bench("topk", &format!("search_top_k/{label}/k={k_label}"), || {
                engine.search_top_k(&query, k, ResultSemantics::Slca)
            });
        }
        let top = engine.search_top_k(&query, 10, ResultSemantics::Slca);
        stat(
            "topk",
            &format!("executor_stats/{label}/k=10"),
            format!(
                "{} results · {} postings scanned · {} gallop probes · {} candidates pruned",
                top.hits.len(),
                top.stats.postings_scanned,
                top.stats.gallop_probes,
                top.stats.candidates_pruned
            ),
        );
    }
}

fn main() {
    bench_slca_algorithms();
    bench_index_build();
    report_substrate_footprint();
    bench_query_end_to_end();
    bench_topk_sweep();
}
