//! Benches for the XML substrate: parsing, serialisation and feature
//! extraction over the Product Reviews dataset.
//!
//! Run with `cargo bench -p xsact-bench --bench xml_substrate`.
//! (Self-timing harness; criterion is unavailable in the offline build.)

use xsact_bench::harness::{bench, emit_json, format_duration};
use xsact_bench::scaled;
use xsact_data::{ReviewsGen, ReviewsGenConfig};
use xsact_entity::{extract_features, StructureSummary};
use xsact_xml::{parse_document, writer, Document};

fn dataset() -> Document {
    let products = scaled(24, 6);
    let reviews = if xsact_bench::quick_mode() { (5, 10) } else { (20, 60) };
    ReviewsGen::new(ReviewsGenConfig { seed: 42, products, reviews }).generate()
}

fn bench_parse_and_write() {
    let doc = dataset();
    let xml = writer::write_document(&doc, &writer::WriteOptions::compact());
    let parse =
        bench("xml", "parse_reviews_dataset", || parse_document(&xml).expect("well-formed"));
    let throughput = xml.len() as f64 / parse.median.as_secs_f64() / (1024.0 * 1024.0);
    println!(
        "xml/parse_reviews_dataset: {} of XML, {:.1} MiB/s (median {})",
        xml.len(),
        throughput,
        format_duration(parse.median)
    );
    bench("xml", "write_reviews_dataset", || {
        writer::write_document(&doc, &writer::WriteOptions::compact())
    });
}

fn bench_structure_inference() {
    let doc = dataset();
    bench("entity", "structure_summary_infer", || StructureSummary::infer(&doc));
    let summary = StructureSummary::infer(&doc);
    let product = doc.child_elements(doc.root()).next().expect("a product");
    bench("entity", "extract_features_one_product", || {
        extract_features(&doc, &summary, product, "p")
    });
}

fn main() {
    bench_parse_and_write();
    bench_structure_inference();
    emit_json("xml_substrate");
}
