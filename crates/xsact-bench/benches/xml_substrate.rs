//! Criterion benches for the XML substrate: parsing, serialisation and
//! feature extraction over the Product Reviews dataset.
//!
//! Run with `cargo bench -p xsact-bench --bench xml_substrate`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use xsact_data::{ReviewsGen, ReviewsGenConfig};
use xsact_entity::{extract_features, StructureSummary};
use xsact_xml::{parse_document, writer, Document};

fn dataset() -> Document {
    ReviewsGen::new(ReviewsGenConfig { seed: 42, products: 24, reviews: (20, 60) }).generate()
}

fn bench_parse_and_write(c: &mut Criterion) {
    let doc = dataset();
    let xml = writer::write_document(&doc, &writer::WriteOptions::compact());
    let mut group = c.benchmark_group("xml");
    group
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("parse_reviews_dataset", |b| {
        b.iter(|| black_box(parse_document(&xml).expect("well-formed")))
    });
    group.bench_function("write_reviews_dataset", |b| {
        b.iter(|| black_box(writer::write_document(&doc, &writer::WriteOptions::compact())))
    });
    group.finish();
}

fn bench_structure_inference(c: &mut Criterion) {
    let doc = dataset();
    let mut group = c.benchmark_group("entity");
    group.measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    group.bench_function("structure_summary_infer", |b| {
        b.iter(|| black_box(StructureSummary::infer(&doc)))
    });
    let summary = StructureSummary::infer(&doc);
    let product = doc.child_elements(doc.root()).next().expect("a product");
    group.bench_function("extract_features_one_product", |b| {
        b.iter(|| black_box(extract_features(&doc, &summary, product, "p")))
    });
    group.finish();
}

criterion_group!(benches, bench_parse_and_write, bench_structure_inference);
criterion_main!(benches);
