//! Benches for the DFS generation algorithms — the timing side of the
//! paper's Figure 4(b), plus per-component costs (instance build, the
//! exhaustive oracle on a small instance).
//!
//! Run with `cargo bench -p xsact-bench --bench dfs_algorithms`.
//! (Self-timing harness; criterion is unavailable in the offline build.)

use xsact::prelude::*;
use xsact_bench::harness::{bench, emit_json};
use xsact_bench::{
    movie_workbench, prepare_qm_queries, scaled, FIG4_BOUND, FIG4_RESULT_CAP, FIG4_SEED,
};
use xsact_core::{exhaustive, run_algorithm, Instance};
use xsact_data::fixtures;
use xsact_entity::{FeatureType, ResultFeatures};

/// Figure 4(b): one timing series per algorithm over QM1–QM8 (QM1–QM2 in
/// quick mode).
fn bench_fig4_algorithms() {
    let wb = movie_workbench(scaled(400, 60), FIG4_SEED);
    let prepared = prepare_qm_queries(&wb, FIG4_RESULT_CAP, FIG4_BOUND);
    for p in &prepared[..scaled(prepared.len(), 2)] {
        let Some(inst) = &p.instance else { continue };
        for algo in [Algorithm::SingleSwap, Algorithm::MultiSwap] {
            bench("fig4b", &format!("{}/{}", algo.name(), p.label), || run_algorithm(inst, algo));
        }
    }
}

/// Preprocessing cost: building the comparison instance (interning + the
/// differentiability matrix) from extracted features.
fn bench_instance_build() {
    let wb = movie_workbench(scaled(400, 60), FIG4_SEED);
    let prepared = prepare_qm_queries(&wb, FIG4_RESULT_CAP, FIG4_BOUND);
    let features = wb
        .query(&prepared[0].text)
        .expect("QM1 is non-empty")
        .take(FIG4_RESULT_CAP)
        .features()
        .expect("QM1 matches the 400-movie dataset");
    bench("preprocess", "instance_build_qm1", || {
        Instance::build(&features, DfsConfig { size_bound: FIG4_BOUND, threshold_pct: 10.0 })
    });
}

/// The raw kernels: runtime-dispatched arm vs the scalar oracle, on mask
/// widths the dispatcher actually vectorises. The figure workloads' DoD
/// matrices are 1–2 words per row — below the ≥8-word SIMD cut-over, so
/// they run scalar either way; this series is where the dispatch win is
/// measured (and it reports which arm the process selected).
fn bench_kernel_dispatch() {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    let mut rng = StdRng::seed_from_u64(FIG4_SEED);
    const WORDS: usize = 512; // 32 768 feature types per row
    let a: Vec<u64> = (0..WORDS).map(|_| rng.next_u64()).collect();
    let b: Vec<u64> = (0..WORDS).map(|_| rng.next_u64()).collect();
    let c: Vec<u64> = (0..WORDS).map(|_| rng.next_u64()).collect();
    const LANES: usize = 4096;
    let vals: Vec<u32> = (0..LANES).map(|_| rng.next_u64() as u32).collect();
    let (lo, hi) = (u32::MAX / 4, u32::MAX / 4 * 3);
    println!("kernel/active_level: {}", xsact_kernel::active_level().name());
    bench("kernel", &format!("and2_count_{WORDS}w/dispatch"), || xsact_kernel::and2_count(&a, &b));
    bench("kernel", &format!("and2_count_{WORDS}w/scalar"), || {
        xsact_kernel::scalar::and2_count(&a, &b)
    });
    bench("kernel", &format!("and3_count_{WORDS}w/dispatch"), || {
        xsact_kernel::and3_count(&a, &b, &c)
    });
    bench("kernel", &format!("and3_count_{WORDS}w/scalar"), || {
        xsact_kernel::scalar::and3_count(&a, &b, &c)
    });
    bench("kernel", &format!("range_count_{LANES}l/dispatch"), || {
        xsact_kernel::count_in_range_u32(&vals, lo, hi)
    });
    bench("kernel", &format!("range_count_{LANES}l/scalar"), || {
        xsact_kernel::scalar::count_in_range_u32(&vals, lo, hi)
    });
}

/// The corpus engine: merged ranking over a synthetic fleet, sequential vs
/// sharded, on the same corpus — the microbench companion of the
/// `corpus_scaling` sweep binary.
fn bench_corpus_fan_out() {
    let docs = scaled(8, 2);
    let mut corpus = Corpus::synthetic_movies(docs, scaled(150, 20), FIG4_SEED);
    for shards in [1usize, 4] {
        corpus.set_shards(shards);
        // Build the query inside the closure: CorpusQuery memoizes its
        // ranking, and the fan-out is what this series measures.
        bench("corpus", &format!("ranking_{docs}_docs/{shards}_shards"), || {
            corpus.query("drama family").expect("query is non-empty").ranking().hits.len()
        });
    }
}

/// The paper's worked example end-to-end (search → extract → multi-swap →
/// table), as a single pipeline latency figure — once cold (cache cleared
/// every iteration) and once warm (the session cache the Workbench adds).
fn bench_paper_example_pipeline() {
    let wb = Workbench::from_document(fixtures::figure1_document());
    let run = |wb: &Workbench| {
        let outcome = wb
            .query(fixtures::PAPER_QUERY)
            .expect("paper query is non-empty")
            .size_bound(fixtures::TABLE_BOUND)
            .compare(Algorithm::MultiSwap)
            .expect("paper query matches two results");
        outcome.table()
    };
    bench("pipeline", "figure2_end_to_end_cold", || {
        wb.clear_cache();
        run(&wb)
    });
    bench("pipeline", "figure2_end_to_end_warm", || run(&wb));
}

/// Result-count scaling of the DoD kernel: n ∈ {4, 8, 16, 32} synthetic
/// results over a fixed type universe (m stays constant, so the sweep
/// isolates the n² pair loops and the n-wide weight passes). Each step
/// prints the instance's differentiability bit-matrix footprint next to the
/// per-algorithm timings. Quick mode stops at n = 8.
fn bench_result_count_sweep() {
    const ENTITIES: [&str; 3] = ["product", "review", "spec"];
    const ATTRS_PER_ENTITY: usize = 8; // m = 24 types, fixed across the sweep
    let make_result = |i: usize| -> ResultFeatures {
        let triplets: Vec<(FeatureType, String, u32)> = ENTITIES
            .iter()
            .enumerate()
            .flat_map(|(e, entity)| {
                (0..ATTRS_PER_ENTITY).map(move |a| {
                    // Deterministic per-result counts spread over 1..=10 so
                    // many (pair, type) combinations straddle the threshold.
                    let count = 1 + ((i * 7 + e * 5 + a * 3) % 10) as u32;
                    (FeatureType::new(*entity, format!("attr{a}")), "yes".to_string(), count)
                })
            })
            .collect();
        ResultFeatures::from_raw(
            format!("r{i}"),
            ENTITIES.iter().map(|e| (e.to_string(), 10u32)),
            triplets,
        )
    };
    let counts: &[usize] = if xsact_bench::quick_mode() { &[4, 8] } else { &[4, 8, 16, 32] };
    for &n in counts {
        let features: Vec<ResultFeatures> = (0..n).map(make_result).collect();
        let config = DfsConfig { size_bound: FIG4_BOUND, threshold_pct: 10.0 };
        let inst = Instance::build(&features, config);
        println!(
            "sweep/n{n}: m = {m} types, bitmatrix {bytes} B ({words} words/row)",
            m = inst.type_count(),
            bytes = inst.bitmatrix_bytes(),
            words = inst.words_per_row(),
        );
        bench("sweep", &format!("instance_build/n{n}"), || Instance::build(&features, config));
        for algo in [Algorithm::SingleSwap, Algorithm::MultiSwap] {
            bench("sweep", &format!("{}/n{n}", algo.name()), || run_algorithm(&inst, algo));
        }
    }
}

/// The exhaustive oracle on the Figure 1 instance — how expensive exactness
/// is even on two results.
fn bench_exhaustive_oracle() {
    let wb = Workbench::from_document(fixtures::figure1_document());
    let features = wb
        .query(fixtures::PAPER_QUERY)
        .expect("paper query is non-empty")
        .features()
        .expect("paper query matches two results");
    let inst = Instance::build(
        &features,
        DfsConfig { size_bound: fixtures::TABLE_BOUND, threshold_pct: 10.0 },
    );
    bench("oracle", "exhaustive_figure1", || exhaustive(&inst, 5_000_000));
}

fn main() {
    bench_fig4_algorithms();
    bench_instance_build();
    bench_kernel_dispatch();
    bench_result_count_sweep();
    bench_corpus_fan_out();
    bench_paper_example_pipeline();
    bench_exhaustive_oracle();
    emit_json("dfs_algorithms");
}
