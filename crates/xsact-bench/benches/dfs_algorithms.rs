//! Criterion benches for the DFS generation algorithms — the timing side of
//! the paper's Figure 4(b), plus per-component costs (instance build,
//! exhaustive oracle on a small instance).
//!
//! Run with `cargo bench -p xsact-bench --bench dfs_algorithms`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use xsact_bench::{movie_engine, prepare_qm_queries, FIG4_BOUND, FIG4_RESULT_CAP, FIG4_SEED};
use xsact_core::{exhaustive, run_algorithm, Algorithm, Comparison, DfsConfig, Instance};
use xsact_data::fixtures;
use xsact_entity::ResultFeatures;
use xsact_index::{Query, SearchEngine};

/// Figure 4(b): one timing series per algorithm over QM1–QM8.
fn bench_fig4_algorithms(c: &mut Criterion) {
    let engine = movie_engine(400, FIG4_SEED);
    let prepared = prepare_qm_queries(&engine, FIG4_RESULT_CAP, FIG4_BOUND);
    let mut group = c.benchmark_group("fig4b");
    group.measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    for p in &prepared {
        let Some(inst) = &p.instance else { continue };
        for algo in [Algorithm::SingleSwap, Algorithm::MultiSwap] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), p.label),
                inst,
                |b, inst| b.iter(|| black_box(run_algorithm(inst, algo))),
            );
        }
    }
    group.finish();
}

/// Preprocessing cost: building the comparison instance (interning + the
/// differentiability matrix) from extracted features.
fn bench_instance_build(c: &mut Criterion) {
    let engine = movie_engine(400, FIG4_SEED);
    let prepared = prepare_qm_queries(&engine, FIG4_RESULT_CAP, FIG4_BOUND);
    let results = engine.search(&Query::parse(&prepared[0].text));
    let features: Vec<ResultFeatures> = results
        .iter()
        .take(FIG4_RESULT_CAP)
        .map(|r| engine.extract_features(r))
        .collect();
    let mut group = c.benchmark_group("preprocess");
    group.measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    group.bench_function("instance_build_qm1", |b| {
        b.iter(|| {
            black_box(Instance::build(
                &features,
                DfsConfig { size_bound: FIG4_BOUND, threshold_pct: 10.0 },
            ))
        })
    });
    group.finish();
}

/// The paper's worked example end-to-end (search → extract → multi-swap →
/// table), as a single pipeline latency figure.
fn bench_paper_example_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    group.bench_function("figure2_end_to_end", |b| {
        let engine = SearchEngine::build(fixtures::figure1_document());
        b.iter(|| {
            let results = engine.search(&Query::parse(fixtures::PAPER_QUERY));
            let features: Vec<ResultFeatures> =
                results.iter().map(|r| engine.extract_features(r)).collect();
            let outcome = Comparison::new(&features)
                .size_bound(fixtures::TABLE_BOUND)
                .run(Algorithm::MultiSwap);
            black_box(outcome.table())
        })
    });
    group.finish();
}

/// The exhaustive oracle on the Figure 1 instance — how expensive exactness
/// is even on two results.
fn bench_exhaustive_oracle(c: &mut Criterion) {
    let engine = SearchEngine::build(fixtures::figure1_document());
    let results = engine.search(&Query::parse(fixtures::PAPER_QUERY));
    let features: Vec<ResultFeatures> =
        results.iter().map(|r| engine.extract_features(r)).collect();
    let inst = Instance::build(
        &features,
        DfsConfig { size_bound: fixtures::TABLE_BOUND, threshold_pct: 10.0 },
    );
    let mut group = c.benchmark_group("oracle");
    group.measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    group.bench_function("exhaustive_figure1", |b| {
        b.iter(|| black_box(exhaustive(&inst, 5_000_000)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4_algorithms,
    bench_instance_build,
    bench_paper_example_pipeline,
    bench_exhaustive_oracle
);
criterion_main!(benches);
