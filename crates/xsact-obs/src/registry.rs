//! A registry of named metrics with a stable text exposition.
//!
//! Registration takes a write lock once per metric name; the returned
//! handles are `Arc`s over the atomic metric itself, so the hot recording
//! path never touches the registry again. [`MetricsRegistry::expose`]
//! renders every metric in name order as Prometheus-style text — counters
//! and gauges as one sample line, histograms as a `summary` (quantile
//! lines plus `_sum`/`_count`/`_max`) so the exposition stays a fixed
//! handful of lines per metric instead of one line per bucket.
//!
//! Names are expected to be `snake_case` identifiers (the convention in
//! this workspace is an `xsact_` prefix and an explicit unit suffix such
//! as `_ns`); the registry treats them as opaque keys.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named counters, gauges, and histograms; see the module
/// docs.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind — a
    /// naming bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {}", kind(&other)),
        }
    }

    /// The gauge named `name`, registering it on first use (same
    /// kind-clash panic as [`counter`](Self::counter)).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {}", kind(&other)),
        }
    }

    /// The histogram named `name`, registering it on first use (same
    /// kind-clash panic as [`counter`](Self::counter)).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {}", kind(&other)),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(found) = self.metrics.read().expect("metrics lock poisoned").get(name) {
            return found.clone();
        }
        let mut metrics = self.metrics.write().expect("metrics lock poisoned");
        metrics.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// The full exposition: every metric in name order, each preceded by a
    /// `# TYPE` line. Ends with a newline. Stable modulo the values — the
    /// CI smoke test diffs the shape with values normalised.
    pub fn expose(&self) -> String {
        let metrics = self.metrics.read().expect("metrics lock poisoned");
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = writeln!(out, "# TYPE {name} summary");
                    for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
                        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", s.quantile(q));
                    }
                    let _ = writeln!(out, "{name}_sum {}", s.sum);
                    let _ = writeln!(out, "{name}_count {}", s.count);
                    let _ = writeln!(out, "{name}_max {}", s.max);
                }
            }
        }
        out
    }
}

fn kind(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name() {
        let r = MetricsRegistry::new();
        r.counter("xsact_requests").add(2);
        r.counter("xsact_requests").inc();
        assert_eq!(r.counter("xsact_requests").get(), 3);
        r.gauge("xsact_depth").set(-4);
        assert_eq!(r.gauge("xsact_depth").get(), -4);
        r.histogram("xsact_lat_ns").record(10);
        assert_eq!(r.histogram("xsact_lat_ns").count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let r = MetricsRegistry::new();
        r.counter("xsact_thing");
        r.gauge("xsact_thing");
    }

    #[test]
    fn exposition_is_sorted_and_typed() {
        let r = MetricsRegistry::new();
        r.histogram("xsact_lat_ns").record(1000);
        r.counter("xsact_a").inc();
        r.gauge("xsact_b").set(7);
        let text = r.expose();
        let expected = "# TYPE xsact_a counter\n\
                        xsact_a 1\n\
                        # TYPE xsact_b gauge\n\
                        xsact_b 7\n\
                        # TYPE xsact_lat_ns summary\n\
                        xsact_lat_ns{quantile=\"0.5\"} 725\n\
                        xsact_lat_ns{quantile=\"0.9\"} 725\n\
                        xsact_lat_ns{quantile=\"0.99\"} 725\n\
                        xsact_lat_ns_sum 1000\n\
                        xsact_lat_ns_count 1\n\
                        xsact_lat_ns_max 1000\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn concurrent_registration_yields_one_metric() {
        let r = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        r.counter("xsact_hot").inc();
                    }
                });
            }
        });
        assert_eq!(r.counter("xsact_hot").get(), 800);
        assert_eq!(r.expose().matches("# TYPE xsact_hot").count(), 1);
    }
}
