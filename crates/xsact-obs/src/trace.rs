//! Per-query stage traces.
//!
//! A [`TraceSink`] collects named, timed spans as a query moves through
//! the pipeline (parse → plan → slca-stream → rank → merge); the engine
//! threads an `Option<&TraceSink>` down so that with `None` the code
//! takes no timestamps at all — tracing is zero-cost when disabled, which
//! is what lets the byte-identity suite run with tracing both off and on.
//!
//! Timings come from [`Instant`], so they are monotonic; spans carry
//! integer annotations (executor counters, shard sizes) rather than a
//! payload type, which keeps this crate dependency-free. The sink is
//! `Sync` (a mutex around the span list) so a corpus fan-out's shard
//! workers can record concurrently; span order is therefore insertion
//! order, which for the single-threaded engine path is pipeline order.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// One completed, timed stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Stage label (e.g. `plan`, `slca-stream`, `shard 3`).
    pub label: String,
    /// Wall time of the stage, monotonic-clock nanoseconds.
    pub nanos: u64,
    /// Integer annotations, in the order they were noted.
    pub notes: Vec<(&'static str, u64)>,
}

/// A finished per-query trace: the spans in recording order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// The recorded spans.
    pub spans: Vec<TraceSpan>,
}

impl QueryTrace {
    /// Sum of all span times (stages are sequential on the engine path;
    /// for fan-outs this is total busy time, not wall time).
    pub fn total_nanos(&self) -> u64 {
        self.spans.iter().map(|s| s.nanos).sum()
    }

    /// The per-stage table the CLI prints under `--trace`: one line per
    /// span, aligned columns, annotations as `key=value`.
    pub fn render(&self) -> String {
        let label_width =
            self.spans.iter().map(|s| s.label.len()).max().unwrap_or(0).max("stage".len());
        let mut out = format!("{:label_width$}  {:>9}  notes\n", "stage", "time");
        for span in &self.spans {
            let _ = write!(out, "{:label_width$}  {:>9}", span.label, format_nanos(span.nanos));
            for (key, value) in &span.notes {
                let _ = write!(out, " {key}={value}");
            }
            out.push('\n');
        }
        let _ = write!(out, "{:label_width$}  {:>9}", "total", format_nanos(self.total_nanos()));
        out.push('\n');
        out
    }
}

/// Renders nanoseconds with a human unit, one decimal.
pub fn format_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

/// A collector of [`TraceSpan`]s; see the module docs.
#[derive(Debug, Default)]
pub struct TraceSink {
    spans: Mutex<Vec<TraceSpan>>,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Starts a span; it records into the sink when finished (or
    /// dropped).
    pub fn span(&self, label: impl Into<String>) -> Span<'_> {
        Span { sink: self, label: label.into(), notes: Vec::new(), start: Instant::now() }
    }

    /// Records an already-timed span (for callers that measured
    /// elsewhere).
    pub fn record(&self, label: impl Into<String>, nanos: u64, notes: Vec<(&'static str, u64)>) {
        self.spans.lock().expect("trace sink lock poisoned").push(TraceSpan {
            label: label.into(),
            nanos,
            notes,
        });
    }

    /// Takes the spans recorded so far, leaving the sink empty for the
    /// next query.
    pub fn take(&self) -> QueryTrace {
        QueryTrace { spans: std::mem::take(&mut *self.spans.lock().expect("trace sink poisoned")) }
    }
}

/// An in-flight span; finish (or drop) it to record.
#[derive(Debug)]
pub struct Span<'a> {
    sink: &'a TraceSink,
    label: String,
    notes: Vec<(&'static str, u64)>,
    start: Instant,
}

impl Span<'_> {
    /// Attaches an integer annotation.
    pub fn note(&mut self, key: &'static str, value: u64) {
        self.notes.push((key, value));
    }

    /// Ends the span and records it (equivalent to dropping, but states
    /// the intent at call sites).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.sink.record(std::mem::take(&mut self.label), nanos, std::mem::take(&mut self.notes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_order_with_notes() {
        let sink = TraceSink::new();
        let mut a = sink.span("plan");
        a.note("lists", 2);
        a.finish();
        sink.span("rank").finish();
        let trace = sink.take();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].label, "plan");
        assert_eq!(trace.spans[0].notes, vec![("lists", 2)]);
        assert_eq!(trace.spans[1].label, "rank");
        // take() drains: the next query starts clean.
        assert!(sink.take().spans.is_empty());
    }

    #[test]
    fn render_is_a_table_with_totals() {
        let sink = TraceSink::new();
        sink.record("parse", 1_500, vec![("terms", 2)]);
        sink.record("slca-stream", 2_500_000, vec![]);
        let table = sink.take().render();
        assert!(table.starts_with("stage"), "{table}");
        assert!(table.contains("parse"), "{table}");
        assert!(table.contains("1.5µs"), "{table}");
        assert!(table.contains("terms=2"), "{table}");
        assert!(table.contains("2.5ms"), "{table}");
        assert!(table.trim_end().ends_with("2.5ms"), "total row last: {table}");
    }

    #[test]
    fn format_nanos_picks_units() {
        assert_eq!(format_nanos(999), "999ns");
        assert_eq!(format_nanos(1_000), "1.0µs");
        assert_eq!(format_nanos(2_500_000), "2.5ms");
        assert_eq!(format_nanos(1_500_000_000), "1.50s");
    }

    #[test]
    fn concurrent_spans_all_land() {
        let sink = TraceSink::new();
        std::thread::scope(|scope| {
            for shard in 0..4 {
                let sink = &sink;
                scope.spawn(move || sink.span(format!("shard {shard}")).finish());
            }
        });
        assert_eq!(sink.take().spans.len(), 4);
    }
}
