//! Observability primitives for the XSACT workspace — dependency-free,
//! std-only, and shared by every layer that wants telemetry.
//!
//! Three pieces, each usable alone:
//!
//! * [`Histogram`] — a log-bucketed (√2-spaced) fixed-size latency
//!   histogram with wait-free relaxed-atomic recording and
//!   `p50`/`p90`/`p99`/`max` reconstruction ([`hist`]).
//! * [`MetricsRegistry`] — named counters, gauges, and histograms with a
//!   stable Prometheus-style text exposition ([`registry`]), servable
//!   over plain HTTP by [`http::serve_metrics`].
//! * [`TraceSink`] / [`QueryTrace`] — per-query stage spans with
//!   monotonic timings and integer annotations ([`trace`]), threaded
//!   through the engine as an `Option<&TraceSink>` so disabled tracing
//!   takes no timestamps.
//!
//! This crate holds no XSACT types: callers attach their own counters as
//! span notes and choose their own metric names. The convention used by
//! the serving stack is an `xsact_` prefix and explicit unit suffixes
//! (`_ns` for nanosecond histograms).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod http;
pub mod registry;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use http::{serve_metrics, MetricsServer};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use trace::{format_nanos, QueryTrace, Span, TraceSink, TraceSpan};
