//! A minimal plain-HTTP `GET /metrics` endpoint over `std::net`.
//!
//! Just enough HTTP/1.0 for a scraper or `curl`: one accept loop, one
//! request line plus headers read per connection, one response, close.
//! No keep-alive, no TLS, no routing beyond `/metrics` — anything else is
//! a 404. Shutdown follows the same pattern as the TCP query front end:
//! set a stop flag, then self-connect to wake the blocking `accept`.

use crate::registry::MetricsRegistry;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running metrics endpoint; dropping it shuts the listener down.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. Idempotent via drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            accept.join().expect("metrics accept loop panicked");
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (port 0 for ephemeral) and serves `registry`'s exposition
/// at `GET /metrics`, one short-lived connection at a time — metrics
/// scrapes are rare and tiny, so a second thread would buy nothing.
pub fn serve_metrics(registry: Arc<MetricsRegistry>, addr: &str) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new().name("xsact-metrics".to_owned()).spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = handle_scrape(&registry, stream);
            }
        })?
    };
    Ok(MetricsServer { addr, stop, accept: Some(accept) })
}

/// Reads one request, writes one response, closes.
fn handle_scrape(registry: &MetricsRegistry, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so well-behaved clients are not cut off mid-send.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 0 && header.trim_end() != "" {
        header.clear();
    }
    let mut writer = stream;
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method == "GET" && path == "/metrics" {
        let body = registry.expose();
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    } else {
        let body = "only GET /metrics is served\n";
        format!(
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    };
    writer.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect to metrics endpoint");
        conn.write_all(request.as_bytes()).expect("send request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("read response");
        response
    }

    #[test]
    fn serves_the_exposition_and_404s_elsewhere() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("xsact_up").inc();
        let mut server = serve_metrics(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let ok = scrape(server.addr(), "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200 OK"), "{ok}");
        assert!(ok.contains("xsact_up 1"), "{ok}");
        let missing = scrape(server.addr(), "GET /other HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut server = serve_metrics(registry, "127.0.0.1:0").expect("bind");
        server.shutdown();
        server.shutdown();
    }
}
