//! A log-bucketed, fixed-size latency histogram (HdrHistogram-lite).
//!
//! [`HIST_BUCKETS`] buckets whose boundaries are successive powers of √2,
//! so two values land in the same bucket only if they differ by less than
//! ~41 % — tight enough for latency percentiles, coarse enough that the
//! whole histogram is a flat array of relaxed atomics with no allocation
//! and no locks on the record path. Recording is wait-free
//! (`fetch_add`/`fetch_max`); a snapshot reads one counter at a time, so a
//! snapshot taken *while* traffic flows may mix instants — at any
//! quiescent point it is exact (the same guarantee the rest of the
//! workspace's relaxed counters give).
//!
//! Quantiles are reconstructed by nearest-rank over the bucket counts and
//! reported as the bucket's smallest representable integer, clamped to the
//! exactly-tracked maximum. That makes reported quantiles *lower bounds*
//! within one bucket (≤ 41 % relative error), and guarantees
//! `p50 <= p90 <= p99 <= max` for every input.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: √2-spaced boundaries cover `1 ..= 2^31.5` (≈ 3 s in
/// nanoseconds); the last bucket is open-ended and the maximum is tracked
/// exactly alongside.
pub const HIST_BUCKETS: usize = 64;

/// Bucket index of `value`: bucket `i` covers `[2^(i/2), 2^((i+1)/2))`,
/// clamped into the last bucket.
fn bucket_of(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    let msb = 63 - value.leading_zeros() as usize;
    // The odd (half-power) boundary check, in exact integer arithmetic:
    // value >= 2^(msb + 1/2)  <=>  value^2 >= 2^(2·msb + 1).
    let half = u64::from((value as u128) * (value as u128) >= 1u128 << (2 * msb + 1));
    (2 * msb + half as usize).min(HIST_BUCKETS - 1)
}

/// The smallest integer a bucket can hold — the value quantiles report.
/// Never exceeds any value recorded into the bucket, so quantiles
/// under-approximate within one bucket rather than inventing larger
/// latencies than were observed.
fn bucket_floor(index: usize) -> u64 {
    if index.is_multiple_of(2) {
        1u64 << (index / 2)
    } else {
        // ceil(2^(index/2)) = ceil(sqrt(2^index)), exactly.
        ceil_sqrt(1u128 << index)
    }
}

/// Smallest `x` with `x² >= n`.
fn ceil_sqrt(n: u128) -> u64 {
    let mut x = (n as f64).sqrt() as u128;
    while x * x < n {
        x += 1;
    }
    while x > 0 && (x - 1) * (x - 1) >= n {
        x -= 1;
    }
    x as u64
}

/// A lock-free log-bucketed histogram; see the module docs.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (wait-free, relaxed).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy; quantiles are answered from the copy so one
    /// consistent view backs a whole `p50/p90/p99` line.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with the quantile math.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values (wraps only after 2^64 total).
    pub sum: u64,
    /// Largest recorded value, exact.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the holding
    /// bucket's floor clamped to the exact maximum; `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded values (`0` when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `count p50 p99 max` one-liner used by human-facing summaries,
    /// with values scaled by `div` (e.g. `1_000` renders nanoseconds as
    /// microseconds).
    pub fn summary_line(&self, div: u64) -> String {
        let div = div.max(1);
        if self.count == 0 {
            return "-".to_owned();
        }
        format!(
            "count:{} p50:{} p99:{} max:{}",
            self.count,
            self.p50() / div,
            self.p99() / div,
            self.max / div
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut last = 0;
        for exp in 0..64 {
            for v in [(1u64 << exp).saturating_sub(1), 1u64 << exp, (1u64 << exp) + 1] {
                let b = bucket_of(v);
                assert!(b < HIST_BUCKETS);
                if v >= last {
                    assert!(b >= bucket_of(last), "bucket_of not monotone at {v}");
                }
                last = v;
            }
        }
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_floor_never_exceeds_members() {
        // Every integer must land in a bucket whose floor is <= itself —
        // that is what makes reported quantiles lower bounds.
        for v in (0..10_000u64).chain([1 << 20, (1 << 20) + 1, u64::MAX]) {
            assert!(bucket_floor(bucket_of(v)) <= v.max(1), "floor above {v}");
        }
    }

    #[test]
    fn exact_small_values_round_trip() {
        // Batch sizes are small integers; the ones that are alone in their
        // bucket must report exactly.
        for v in [1u64, 2, 3, 4, 6, 8, 12, 16] {
            let h = Histogram::new();
            h.record(v);
            assert_eq!(h.snapshot().p50(), v, "p50 of a single {v}");
        }
    }

    #[test]
    fn quantiles_are_ordered_for_adversarial_boundary_values() {
        // Values sitting exactly on, just below, and just above bucket
        // boundaries — the worst case for rank/boundary bookkeeping.
        let mut values = vec![0u64, 1];
        for exp in 1..40 {
            let p = 1u64 << exp;
            values.extend([p - 1, p, p + 1]);
            let half = ceil_sqrt(1u128 << (2 * exp + 1));
            values.extend([half - 1, half, half + 1]);
        }
        values.extend([u64::MAX - 1, u64::MAX]);
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.p50() <= s.p90(), "{} > {}", s.p50(), s.p90());
        assert!(s.p90() <= s.p99(), "{} > {}", s.p90(), s.p99());
        assert!(s.p99() <= s.max, "{} > {}", s.p99(), s.max);
        assert_eq!(s.count, values.len() as u64);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn quantile_is_within_one_bucket_of_truth() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // True p50 is 500; the report may round down to its bucket floor
        // but never by more than the √2 bucket width.
        assert!(s.p50() <= 500 && 500 < s.p50() * 2, "p50 = {}", s.p50());
        assert!(s.p99() <= 990 && 990 < s.p99() * 2, "p99 = {}", s.p99());
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.p50(), s.p99(), s.max, s.mean()), (0, 0, 0, 0, 0));
        assert_eq!(s.summary_line(1), "-");
    }

    #[test]
    fn concurrent_recording_conserves_totals() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8000);
        assert_eq!(s.max, 7999);
    }

    #[test]
    fn summary_line_scales() {
        let h = Histogram::new();
        h.record(4_096);
        let s = h.snapshot();
        assert_eq!(s.summary_line(1_000), "count:1 p50:4 p99:4 max:4");
    }
}
