//! `xsact` — terminal demo of the XSACT system (VLDB 2010).
//!
//! The analogue of the paper's web demo (Figure 5): pick a dataset, issue a
//! keyword query, select results, and get a comparison table whose
//! Differentiation Feature Sets maximise the degree of differentiation.
//!
//! ```text
//! cargo run -p xsact-cli -- --dataset figure1 --bound 7 --stats
//! cargo run -p xsact-cli -- --dataset movies --query "war soldier" --algorithm multi-swap
//! cargo run -p xsact-cli -- corpus --dir datasets/ --query "drama family" --shards 4
//! ```

mod app;
mod args;

use std::process::ExitCode;

fn main() -> ExitCode {
    let command = match args::parse(std::env::args().skip(1)) {
        Ok(command) => command,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &command {
        args::Command::Single(args) => app::run(args),
        args::Command::Corpus(args) => app::run_corpus(args),
        args::Command::Serve(args) => app::run_serve(args),
        args::Command::Client(args) => app::run_client(args),
    };
    match result {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
