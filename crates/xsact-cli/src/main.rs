//! `xsact` — terminal demo of the XSACT system (VLDB 2010).
//!
//! The analogue of the paper's web demo (Figure 5): pick a dataset, issue a
//! keyword query, select results, and get a comparison table whose
//! Differentiation Feature Sets maximise the degree of differentiation.
//!
//! ```text
//! cargo run -p xsact-cli -- --dataset figure1 --bound 7 --stats
//! cargo run -p xsact-cli -- --dataset movies --query "war soldier" --algorithm multi-swap
//! ```

mod app;
mod args;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = args::parse(std::env::args().skip(1));
    let args = match parsed {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match app::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
