//! Command-line argument parsing (hand-rolled; the workspace stays
//! dependency-light).

use std::fmt;
use xsact_core::Algorithm;
use xsact_index::ResultSemantics;

/// Which dataset to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// The paper's Figure 1 worked example.
    Figure1,
    /// Synthetic Product Reviews (buzzillions.com substitute).
    Reviews,
    /// Synthetic Outdoor Retailer (REI.com substitute).
    Outdoor,
    /// Synthetic IMDB-like movies.
    Movies,
    /// Synthetic job board (employee hiring domain).
    Jobs,
}

impl Dataset {
    fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "figure1" | "fig1" | "paper" => Ok(Dataset::Figure1),
            "reviews" | "products" => Ok(Dataset::Reviews),
            "outdoor" | "rei" => Ok(Dataset::Outdoor),
            "movies" | "imdb" => Ok(Dataset::Movies),
            "jobs" | "hiring" => Ok(Dataset::Jobs),
            other => Err(ArgError(format!(
                "unknown dataset {other:?}; use figure1 | reviews | outdoor | movies | jobs"
            ))),
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// Dataset to load.
    pub dataset: Dataset,
    /// Keyword query.
    pub query: String,
    /// Comparison table size bound `L`.
    pub bound: usize,
    /// Differentiability threshold `x` in percent.
    pub threshold: f64,
    /// DFS generation algorithm.
    pub algorithm: Algorithm,
    /// 1-based result positions to compare (empty = first four).
    pub select: Vec<usize>,
    /// Generator seed for the synthetic datasets.
    pub seed: u64,
    /// Print each selected result's statistics panel.
    pub stats: bool,
    /// Print the full XML of each selected result.
    pub show_xml: bool,
    /// LCA semantics used by the search engine.
    pub semantics: ResultSemantics,
    /// Order the result list by relevance instead of document order.
    pub ranked: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            dataset: Dataset::Figure1,
            query: String::new(),
            bound: 8,
            threshold: 10.0,
            algorithm: Algorithm::MultiSwap,
            select: Vec::new(),
            seed: 42,
            stats: false,
            show_xml: false,
            semantics: ResultSemantics::Slca,
            ranked: false,
        }
    }
}

/// A human-readable argument error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Usage text printed on `--help` or errors.
pub const USAGE: &str = "\
xsact — compare structured search results (VLDB 2010 demo reproduction)

USAGE:
    xsact-demo [OPTIONS]

OPTIONS:
    --dataset <name>     figure1 | reviews | outdoor | movies | jobs [figure1]
    --query <text>       keyword query (default: the dataset's demo query)
    --bound <L>          max features per DFS                   [8]
    --threshold <x>      differentiability threshold in percent [10]
    --algorithm <name>   snippet | greedy | single-swap | multi-swap [multi-swap]
    --select <list>      1-based result numbers, e.g. 1,3       [first 4]
    --seed <n>           generator seed                         [42]
    --semantics <s>      slca | elca result semantics           [slca]
    --ranked             order results by relevance (TF-IDF)
    --stats              print per-result statistics panels
    --xml                print each selected result's XML
    --help               this text
";

/// Parses `argv[1..]`.
pub fn parse<I>(mut argv: I) -> Result<Args, ArgError>
where
    I: Iterator<Item = String>,
{
    let mut args = Args::default();
    while let Some(flag) = argv.next() {
        let mut value =
            |name: &str| argv.next().ok_or_else(|| ArgError(format!("{name} requires a value")));
        match flag.as_str() {
            "--dataset" => args.dataset = Dataset::parse(&value("--dataset")?)?,
            "--query" => args.query = value("--query")?,
            "--bound" => {
                args.bound = value("--bound")?
                    .parse()
                    .map_err(|_| ArgError("--bound expects an integer".into()))?;
            }
            "--threshold" => {
                args.threshold = value("--threshold")?
                    .parse()
                    .map_err(|_| ArgError("--threshold expects a number".into()))?;
            }
            "--algorithm" => {
                args.algorithm = match value("--algorithm")?.as_str() {
                    "snippet" => Algorithm::Snippet,
                    "greedy" => Algorithm::Greedy,
                    "single-swap" | "single" => Algorithm::SingleSwap,
                    "multi-swap" | "multi" => Algorithm::MultiSwap,
                    other => {
                        return Err(ArgError(format!(
                            "unknown algorithm {other:?}; use snippet | greedy | single-swap | multi-swap"
                        )))
                    }
                };
            }
            "--select" => {
                args.select = value("--select")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| ArgError(format!("bad result number {s:?}")))
                    })
                    .collect::<Result<_, _>>()?;
                if args.select.contains(&0) {
                    return Err(ArgError("--select positions are 1-based".into()));
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| ArgError("--seed expects an integer".into()))?;
            }
            "--semantics" => {
                args.semantics = match value("--semantics")?.as_str() {
                    "slca" => ResultSemantics::Slca,
                    "elca" => ResultSemantics::Elca,
                    other => {
                        return Err(ArgError(format!(
                            "unknown semantics {other:?}; use slca | elca"
                        )))
                    }
                };
            }
            "--ranked" => args.ranked = true,
            "--stats" => args.stats = true,
            "--xml" => args.show_xml = true,
            "--help" | "-h" => return Err(ArgError(USAGE.to_owned())),
            other => return Err(ArgError(format!("unknown flag {other:?}\n\n{USAGE}"))),
        }
    }
    if args.query.is_empty() {
        args.query = default_query(args.dataset).to_owned();
    }
    Ok(args)
}

/// The demo query shown for each dataset.
pub fn default_query(dataset: Dataset) -> &'static str {
    match dataset {
        Dataset::Figure1 | Dataset::Reviews => "TomTom GPS",
        Dataset::Outdoor => "men jackets",
        Dataset::Movies => "drama family",
        Dataset::Jobs => "senior engineer",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> Args {
        parse(args.iter().map(|s| s.to_string())).expect("parses")
    }

    #[test]
    fn defaults() {
        let a = parse_ok(&[]);
        assert_eq!(a.dataset, Dataset::Figure1);
        assert_eq!(a.query, "TomTom GPS");
        assert_eq!(a.bound, 8);
        assert_eq!(a.algorithm, Algorithm::MultiSwap);
    }

    #[test]
    fn full_flag_set() {
        let a = parse_ok(&[
            "--dataset",
            "movies",
            "--query",
            "war soldier",
            "--bound",
            "5",
            "--threshold",
            "25",
            "--algorithm",
            "single-swap",
            "--select",
            "1,3,4",
            "--seed",
            "9",
            "--stats",
            "--xml",
        ]);
        assert_eq!(a.dataset, Dataset::Movies);
        assert_eq!(a.query, "war soldier");
        assert_eq!(a.bound, 5);
        assert!((a.threshold - 25.0).abs() < 1e-12);
        assert_eq!(a.algorithm, Algorithm::SingleSwap);
        assert_eq!(a.select, vec![1, 3, 4]);
        assert_eq!(a.seed, 9);
        assert!(a.stats && a.show_xml);
    }

    #[test]
    fn dataset_aliases() {
        assert_eq!(parse_ok(&["--dataset", "rei"]).dataset, Dataset::Outdoor);
        assert_eq!(parse_ok(&["--dataset", "imdb"]).dataset, Dataset::Movies);
        assert_eq!(parse_ok(&["--dataset", "paper"]).dataset, Dataset::Figure1);
        assert_eq!(parse_ok(&["--dataset", "hiring"]).dataset, Dataset::Jobs);
    }

    #[test]
    fn default_queries_per_dataset() {
        assert_eq!(parse_ok(&["--dataset", "outdoor"]).query, "men jackets");
        assert_eq!(parse_ok(&["--dataset", "movies"]).query, "drama family");
    }

    #[test]
    fn semantics_and_ranked_flags() {
        let a = parse_ok(&["--semantics", "elca", "--ranked"]);
        assert_eq!(a.semantics, ResultSemantics::Elca);
        assert!(a.ranked);
        assert_eq!(parse_ok(&[]).semantics, ResultSemantics::Slca);
    }

    #[test]
    fn errors() {
        let err = |args: &[&str]| parse(args.iter().map(|s| s.to_string())).unwrap_err();
        assert!(err(&["--dataset", "bogus"]).0.contains("unknown dataset"));
        assert!(err(&["--bound", "x"]).0.contains("integer"));
        assert!(err(&["--bound"]).0.contains("requires a value"));
        assert!(err(&["--algorithm", "dp"]).0.contains("unknown algorithm"));
        assert!(err(&["--select", "0"]).0.contains("1-based"));
        assert!(err(&["--select", "1,a"]).0.contains("bad result number"));
        assert!(err(&["--semantics", "xlca"]).0.contains("unknown semantics"));
        assert!(err(&["--frobnicate"]).0.contains("unknown flag"));
        assert!(err(&["--help"]).0.contains("USAGE"));
    }
}
