//! Command-line argument parsing (hand-rolled; the workspace stays
//! dependency-light).

use std::fmt;
use xsact_core::Algorithm;
use xsact_index::ResultSemantics;

/// Which dataset to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// The paper's Figure 1 worked example.
    Figure1,
    /// Synthetic Product Reviews (buzzillions.com substitute).
    Reviews,
    /// Synthetic Outdoor Retailer (REI.com substitute).
    Outdoor,
    /// Synthetic IMDB-like movies.
    Movies,
    /// Synthetic job board (employee hiring domain).
    Jobs,
}

impl Dataset {
    fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "figure1" | "fig1" | "paper" => Ok(Dataset::Figure1),
            "reviews" | "products" => Ok(Dataset::Reviews),
            "outdoor" | "rei" => Ok(Dataset::Outdoor),
            "movies" | "imdb" => Ok(Dataset::Movies),
            "jobs" | "hiring" => Ok(Dataset::Jobs),
            other => Err(ArgError(format!(
                "unknown dataset {other:?}; use figure1 | reviews | outdoor | movies | jobs"
            ))),
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// Dataset to load.
    pub dataset: Dataset,
    /// Keyword query.
    pub query: String,
    /// Comparison table size bound `L`.
    pub bound: usize,
    /// Differentiability threshold `x` in percent.
    pub threshold: f64,
    /// DFS generation algorithm.
    pub algorithm: Algorithm,
    /// 1-based result positions to compare (empty = first four).
    pub select: Vec<usize>,
    /// Generator seed for the synthetic datasets.
    pub seed: u64,
    /// Print each selected result's statistics panel.
    pub stats: bool,
    /// Print the full XML of each selected result.
    pub show_xml: bool,
    /// LCA semantics used by the search engine.
    pub semantics: ResultSemantics,
    /// Order the result list by relevance instead of document order.
    pub ranked: bool,
    /// Bounded top-k: in ranked mode, list and compare only the best `k`
    /// results via the streaming executor. `None` keeps the classic
    /// full-listing behaviour (compare the first four).
    pub top: Option<usize>,
    /// Print the executor's counters (postings scanned, gallop probes,
    /// candidates pruned) after the run.
    pub explain: bool,
    /// Print a per-stage trace table (parse, plan, slca-stream, rank) of
    /// the query after the run. Purely observational.
    pub trace: bool,
    /// Serialise the inverted index to this path after the run.
    pub save_index: Option<String>,
    /// Restore the inverted index from this path instead of rebuilding it
    /// (fingerprint-checked against the dataset).
    pub load_index: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            dataset: Dataset::Figure1,
            query: String::new(),
            bound: 8,
            threshold: 10.0,
            algorithm: Algorithm::MultiSwap,
            select: Vec::new(),
            seed: 42,
            stats: false,
            show_xml: false,
            semantics: ResultSemantics::Slca,
            ranked: false,
            top: None,
            explain: false,
            trace: false,
            save_index: None,
            load_index: None,
        }
    }
}

/// Arguments of the `corpus` subcommand: query a whole directory (or a
/// synthetic fleet) of documents through the sharded corpus engine.
#[derive(Debug, Clone)]
pub struct CorpusArgs {
    /// Directory of `*.xml` documents to ingest. When absent, a synthetic
    /// movie fleet of `docs` documents is generated instead.
    pub dir: Option<String>,
    /// Synthetic fleet size (used when `dir` is absent).
    pub docs: usize,
    /// Movies per synthetic document.
    pub movies: usize,
    /// Generator seed for the synthetic fleet.
    pub seed: u64,
    /// Keyword query.
    pub query: String,
    /// Shard count; 0 = the machine's available parallelism.
    pub shards: usize,
    /// How many merged results enter the comparison.
    pub top: usize,
    /// Comparison table size bound `L`.
    pub bound: usize,
    /// Differentiability threshold `x` in percent.
    pub threshold: f64,
    /// DFS generation algorithm.
    pub algorithm: Algorithm,
    /// Per-document index cache directory: indexes found here skip the
    /// indexing scan, missing ones are built and saved. Only meaningful
    /// with `dir` (a synthetic fleet never reloads a cache).
    pub index_dir: Option<String>,
    /// Print the corpus-wide executor counters after the run.
    pub explain: bool,
    /// Print a per-stage trace table (parse, per-shard execution, merge)
    /// of the corpus query after the run. Purely observational.
    pub trace: bool,
}

impl Default for CorpusArgs {
    fn default() -> Self {
        CorpusArgs {
            dir: None,
            docs: 8,
            movies: 120,
            seed: 42,
            query: "drama family".to_owned(),
            shards: 0,
            top: 4,
            bound: 8,
            threshold: 10.0,
            algorithm: Algorithm::MultiSwap,
            index_dir: None,
            explain: false,
            trace: false,
        }
    }
}

/// Arguments of the `serve` subcommand: run the long-lived corpus server
/// with its TCP line-protocol front end.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// Directory of `*.xml` documents to serve. When absent, a synthetic
    /// movie fleet of `docs` documents is generated instead.
    pub dir: Option<String>,
    /// Synthetic fleet size (used when `dir` is absent).
    pub docs: usize,
    /// Movies per synthetic document.
    pub movies: usize,
    /// Generator seed for the synthetic fleet.
    pub seed: u64,
    /// Shard count; 0 = the machine's available parallelism.
    pub shards: usize,
    /// Per-document index cache directory (only meaningful with `dir`).
    pub index_dir: Option<String>,
    /// Address to listen on; port 0 binds an ephemeral port (printed).
    pub addr: String,
    /// Submission-queue capacity; 0 rejects everything (test servers).
    pub queue: usize,
    /// Largest batch one dispatch round may form.
    pub max_batch: usize,
    /// Default per-session top-k (sessions change it with `TOP`).
    pub top: usize,
    /// Per-session executor-work budget in posting entries scanned.
    pub budget: Option<u64>,
    /// Address for the plain-HTTP `GET /metrics` endpoint; `None` = no
    /// HTTP exposition (the `METRICS` verb still works).
    pub metrics_addr: Option<String>,
    /// End-to-end latency threshold in milliseconds above which a served
    /// query is logged to stderr; `None` disables the slow-query log.
    pub slow_query_ms: Option<u64>,
    /// Per-query deadline in milliseconds (queue wait + execute); a query
    /// past it gets `ERR DEADLINE_EXCEEDED`. `None` = unlimited.
    pub deadline_ms: Option<u64>,
    /// Entry bound of the result-page cache; 0 disables caching.
    pub cache_entries: usize,
    /// Approximate byte bound of the result-page cache (0 = entry bound
    /// only).
    pub cache_bytes: usize,
    /// Serve with the single-thread poll-multiplexed front end instead of
    /// thread-per-connection (wire behaviour is identical).
    pub mux: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            dir: None,
            docs: 8,
            movies: 120,
            seed: 42,
            shards: 0,
            index_dir: None,
            addr: "127.0.0.1:4141".to_owned(),
            queue: 64,
            max_batch: 16,
            top: 4,
            budget: None,
            metrics_addr: None,
            slow_query_ms: None,
            deadline_ms: None,
            cache_entries: 1024,
            cache_bytes: 4 << 20,
            mux: false,
        }
    }
}

/// Arguments of the `client` subcommand: a scriptable line-protocol
/// client (reads requests from stdin, prints each response body).
#[derive(Debug, Clone)]
pub struct ClientArgs {
    /// Server address to connect to.
    pub addr: String,
    /// Total time in milliseconds to keep retrying the connect (covers
    /// the race between starting the server and the first client).
    pub retry_ms: u64,
    /// How many times to retry a request answered `ERR OVERLOADED`
    /// (exponential backoff with deterministic jitter); 0 = print the
    /// error like any other.
    pub retry_overloaded: u32,
    /// Send each stdin request this many times, printing every response
    /// (cache warm/hit experiments); clamped to at least 1.
    pub repeat: u32,
}

impl Default for ClientArgs {
    fn default() -> Self {
        ClientArgs {
            addr: "127.0.0.1:4141".to_owned(),
            retry_ms: 2000,
            retry_overloaded: 0,
            repeat: 1,
        }
    }
}

/// A parsed invocation: the classic single-document demo, the sharded
/// corpus mode, or the serving runtime's two ends.
#[derive(Debug, Clone)]
pub enum Command {
    /// `xsact [OPTIONS]` — one dataset, one workbench.
    Single(Args),
    /// `xsact corpus [OPTIONS]` — many documents, parallel fan-out.
    Corpus(CorpusArgs),
    /// `xsact serve [OPTIONS]` — long-lived corpus server over TCP.
    Serve(ServeArgs),
    /// `xsact client [OPTIONS]` — line-protocol client (stdin → server).
    Client(ClientArgs),
}

/// A human-readable argument error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Usage text printed on `--help` or errors.
pub const USAGE: &str = "\
xsact — compare structured search results (VLDB 2010 demo reproduction)

USAGE:
    xsact-demo [OPTIONS]
    xsact-demo corpus [CORPUS OPTIONS]

OPTIONS:
    --dataset <name>     figure1 | reviews | outdoor | movies | jobs [figure1]
    --query <text>       keyword query (default: the dataset's demo query)
    --bound <L>          max features per DFS                   [8]
    --threshold <x>      differentiability threshold in percent [10]
    --algorithm <name>   snippet | greedy | single-swap | multi-swap [multi-swap]
    --select <list>      1-based result numbers, e.g. 1,3       [first 4]
    --seed <n>           generator seed                         [42]
    --semantics <s>      slca | elca result semantics           [slca]
    --ranked             order results by relevance (TF-IDF)
    --top <k>            compare the first k results instead of 4; with
                         --ranked the listing itself is bounded to the
                         best k (streaming executor)
    --explain            print executor counters (postings scanned,
                         gallop probes, candidates pruned)
    --trace              print a per-stage latency table for the query
                         (parse, plan, slca-stream, rank)
    --stats              print per-result statistics panels
    --xml                print each selected result's XML
    --save-index <path>  serialise the inverted index after the run
    --load-index <path>  restore the index instead of rebuilding it
    --help               this text

CORPUS OPTIONS (sharded multi-document engine):
    --dir <path>         ingest every *.xml in <path> (sorted order);
                         the synthetic-fleet flags below are then unused
    --docs <n>           synthetic movie fleet size when no --dir  [8]
    --movies <n>         movies per synthetic document (no --dir) [120]
    --seed <n>           fleet generator seed (no --dir)          [42]
    --query <text>       keyword query                 [drama family]
    --shards <n>         shard count (0 = machine parallelism)    [0]
    --top <k>            merged results entering the comparison   [4]
    --bound <L>          max features per DFS                     [8]
    --threshold <x>      differentiability threshold in percent   [10]
    --algorithm <name>   snippet | greedy | single-swap | multi-swap [multi-swap]
    --index-dir <path>   per-document index cache for --dir corpora
                         (skip shard cold starts on reload)
    --explain            print corpus-wide executor counters
    --trace              print a per-stage latency table for the query
                         (parse, per-shard execution, merge)

SERVE OPTIONS (long-lived corpus server, TCP line protocol):
    --dir/--docs/--movies/--seed/--shards/--index-dir
                         corpus source, as in corpus mode
    --addr <host:port>   listen address (port 0 = ephemeral) [127.0.0.1:4141]
    --queue <n>          submission-queue capacity; 0 rejects all   [64]
    --max-batch <n>      largest batch one dispatch round forms     [16]
    --top <k>            default per-session top-k (TOP verb resets) [4]
    --budget <n>         per-session budget in posting entries scanned
                         (a session past it gets ERR BUDGET_EXCEEDED)
    --metrics-addr <a>   also serve plain-HTTP GET /metrics on <a>
                         (Prometheus text exposition; off by default)
    --slow-query-ms <n>  log queries slower than <n> ms end-to-end
                         to stderr (off by default)
    --deadline-ms <n>    per-query deadline (queue wait + execute); a
                         query past it gets ERR DEADLINE_EXCEEDED
    --cache-entries <n>  result-page cache entry bound; 0 disables the
                         cache (hits skip queue and shard pool)   [1024]
    --cache-bytes <n>    result-page cache byte bound; 0 = entry bound
                         only                                  [4194304]
    --mux                multiplex all connections on one front-end
                         thread (poll-based readiness loop); bytes are
                         identical to thread-per-connection
    env XSACT_FAULTS     arm deterministic fault-injection sites (chaos
                         testing; see the fault module docs)
    protocol verbs: QUERY <text> | TOP <k> | STATS | METRICS | QUIT |
    SHUTDOWN; every response ends with a lone '.' line

CLIENT OPTIONS (scriptable line-protocol client; requests from stdin):
    --addr <host:port>   server address                 [127.0.0.1:4141]
    --retry-ms <n>       connect retry window in milliseconds     [2000]
    --retry-overloaded <n>  retry a request answered ERR OVERLOADED up
                         to <n> times (exponential backoff, deterministic
                         jitter)                                     [0]
    --repeat <n>         send each stdin request <n> times, printing
                         every response (cache experiments)          [1]
";

fn parse_algorithm(s: &str) -> Result<Algorithm, ArgError> {
    match s {
        "snippet" => Ok(Algorithm::Snippet),
        "greedy" => Ok(Algorithm::Greedy),
        "single-swap" | "single" => Ok(Algorithm::SingleSwap),
        "multi-swap" | "multi" => Ok(Algorithm::MultiSwap),
        other => Err(ArgError(format!(
            "unknown algorithm {other:?}; use snippet | greedy | single-swap | multi-swap"
        ))),
    }
}

/// Parses `argv[1..]`: a leading `corpus` word selects the corpus
/// subcommand, anything else is the classic single-document demo.
pub fn parse<I>(argv: I) -> Result<Command, ArgError>
where
    I: Iterator<Item = String>,
{
    let mut argv = argv.peekable();
    match argv.peek().map(String::as_str) {
        Some("corpus") => {
            argv.next();
            parse_corpus(argv).map(Command::Corpus)
        }
        Some("serve") => {
            argv.next();
            parse_serve(argv).map(Command::Serve)
        }
        Some("client") => {
            argv.next();
            parse_client(argv).map(Command::Client)
        }
        _ => parse_single(argv).map(Command::Single),
    }
}

fn parse_serve<I>(mut argv: I) -> Result<ServeArgs, ArgError>
where
    I: Iterator<Item = String>,
{
    let mut args = ServeArgs::default();
    let int = |name: &str, v: String| {
        v.parse::<usize>().map_err(|_| ArgError(format!("{name} expects an integer")))
    };
    while let Some(flag) = argv.next() {
        let mut value =
            |name: &str| argv.next().ok_or_else(|| ArgError(format!("{name} requires a value")));
        match flag.as_str() {
            "--dir" => args.dir = Some(value("--dir")?),
            "--docs" => args.docs = int("--docs", value("--docs")?)?,
            "--movies" => args.movies = int("--movies", value("--movies")?)?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| ArgError("--seed expects an integer".into()))?;
            }
            "--shards" => args.shards = int("--shards", value("--shards")?)?,
            "--index-dir" => args.index_dir = Some(value("--index-dir")?),
            "--addr" => args.addr = value("--addr")?,
            "--queue" => args.queue = int("--queue", value("--queue")?)?,
            "--max-batch" => args.max_batch = int("--max-batch", value("--max-batch")?)?,
            "--top" => args.top = int("--top", value("--top")?)?,
            "--budget" => {
                args.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|_| ArgError("--budget expects an integer".into()))?,
                );
            }
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")?),
            "--slow-query-ms" => {
                args.slow_query_ms = Some(
                    value("--slow-query-ms")?
                        .parse()
                        .map_err(|_| ArgError("--slow-query-ms expects an integer".into()))?,
                );
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|_| ArgError("--deadline-ms expects an integer".into()))?,
                );
            }
            "--cache-entries" => {
                args.cache_entries = int("--cache-entries", value("--cache-entries")?)?;
            }
            "--cache-bytes" => args.cache_bytes = int("--cache-bytes", value("--cache-bytes")?)?,
            "--mux" => args.mux = true,
            "--help" | "-h" => return Err(ArgError(USAGE.to_owned())),
            other => return Err(ArgError(format!("unknown serve flag {other:?}\n\n{USAGE}"))),
        }
    }
    Ok(args)
}

fn parse_client<I>(mut argv: I) -> Result<ClientArgs, ArgError>
where
    I: Iterator<Item = String>,
{
    let mut args = ClientArgs::default();
    while let Some(flag) = argv.next() {
        let mut value =
            |name: &str| argv.next().ok_or_else(|| ArgError(format!("{name} requires a value")));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--retry-ms" => {
                args.retry_ms = value("--retry-ms")?
                    .parse()
                    .map_err(|_| ArgError("--retry-ms expects an integer".into()))?;
            }
            "--retry-overloaded" => {
                args.retry_overloaded = value("--retry-overloaded")?
                    .parse()
                    .map_err(|_| ArgError("--retry-overloaded expects an integer".into()))?;
            }
            "--repeat" => {
                args.repeat = value("--repeat")?
                    .parse::<u32>()
                    .map_err(|_| ArgError("--repeat expects an integer".into()))?
                    .max(1);
            }
            "--help" | "-h" => return Err(ArgError(USAGE.to_owned())),
            other => return Err(ArgError(format!("unknown client flag {other:?}\n\n{USAGE}"))),
        }
    }
    Ok(args)
}

fn parse_corpus<I>(mut argv: I) -> Result<CorpusArgs, ArgError>
where
    I: Iterator<Item = String>,
{
    let mut args = CorpusArgs::default();
    let int = |name: &str, v: String| {
        v.parse::<usize>().map_err(|_| ArgError(format!("{name} expects an integer")))
    };
    while let Some(flag) = argv.next() {
        let mut value =
            |name: &str| argv.next().ok_or_else(|| ArgError(format!("{name} requires a value")));
        match flag.as_str() {
            "--dir" => args.dir = Some(value("--dir")?),
            "--docs" => args.docs = int("--docs", value("--docs")?)?,
            "--movies" => args.movies = int("--movies", value("--movies")?)?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| ArgError("--seed expects an integer".into()))?;
            }
            "--query" => args.query = value("--query")?,
            "--shards" => args.shards = int("--shards", value("--shards")?)?,
            "--top" => args.top = int("--top", value("--top")?)?,
            "--bound" => args.bound = int("--bound", value("--bound")?)?,
            "--threshold" => {
                args.threshold = value("--threshold")?
                    .parse()
                    .map_err(|_| ArgError("--threshold expects a number".into()))?;
            }
            "--algorithm" => args.algorithm = parse_algorithm(&value("--algorithm")?)?,
            "--index-dir" => args.index_dir = Some(value("--index-dir")?),
            "--explain" => args.explain = true,
            "--trace" => args.trace = true,
            "--help" | "-h" => return Err(ArgError(USAGE.to_owned())),
            other => return Err(ArgError(format!("unknown corpus flag {other:?}\n\n{USAGE}"))),
        }
    }
    Ok(args)
}

fn parse_single<I>(mut argv: I) -> Result<Args, ArgError>
where
    I: Iterator<Item = String>,
{
    let mut args = Args::default();
    while let Some(flag) = argv.next() {
        let mut value =
            |name: &str| argv.next().ok_or_else(|| ArgError(format!("{name} requires a value")));
        match flag.as_str() {
            "--dataset" => args.dataset = Dataset::parse(&value("--dataset")?)?,
            "--query" => args.query = value("--query")?,
            "--bound" => {
                args.bound = value("--bound")?
                    .parse()
                    .map_err(|_| ArgError("--bound expects an integer".into()))?;
            }
            "--threshold" => {
                args.threshold = value("--threshold")?
                    .parse()
                    .map_err(|_| ArgError("--threshold expects a number".into()))?;
            }
            "--algorithm" => args.algorithm = parse_algorithm(&value("--algorithm")?)?,
            "--select" => {
                args.select = value("--select")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| ArgError(format!("bad result number {s:?}")))
                    })
                    .collect::<Result<_, _>>()?;
                if args.select.contains(&0) {
                    return Err(ArgError("--select positions are 1-based".into()));
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| ArgError("--seed expects an integer".into()))?;
            }
            "--semantics" => {
                args.semantics = match value("--semantics")?.as_str() {
                    "slca" => ResultSemantics::Slca,
                    "elca" => ResultSemantics::Elca,
                    other => {
                        return Err(ArgError(format!(
                            "unknown semantics {other:?}; use slca | elca"
                        )))
                    }
                };
            }
            "--ranked" => args.ranked = true,
            "--top" => {
                args.top = Some(
                    value("--top")?
                        .parse()
                        .map_err(|_| ArgError("--top expects an integer".into()))?,
                );
            }
            "--explain" => args.explain = true,
            "--trace" => args.trace = true,
            "--stats" => args.stats = true,
            "--xml" => args.show_xml = true,
            "--save-index" => args.save_index = Some(value("--save-index")?),
            "--load-index" => args.load_index = Some(value("--load-index")?),
            "--help" | "-h" => return Err(ArgError(USAGE.to_owned())),
            other => return Err(ArgError(format!("unknown flag {other:?}\n\n{USAGE}"))),
        }
    }
    if args.query.is_empty() {
        args.query = default_query(args.dataset).to_owned();
    }
    Ok(args)
}

/// The demo query shown for each dataset.
pub fn default_query(dataset: Dataset) -> &'static str {
    match dataset {
        Dataset::Figure1 | Dataset::Reviews => "TomTom GPS",
        Dataset::Outdoor => "men jackets",
        Dataset::Movies => "drama family",
        Dataset::Jobs => "senior engineer",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> Args {
        match parse(args.iter().map(|s| s.to_string())).expect("parses") {
            Command::Single(a) => a,
            other => panic!("expected single mode, got {other:?}"),
        }
    }

    fn parse_corpus_ok(args: &[&str]) -> CorpusArgs {
        match parse(args.iter().map(|s| s.to_string())).expect("parses") {
            Command::Corpus(c) => c,
            other => panic!("expected corpus mode, got {other:?}"),
        }
    }

    #[test]
    fn defaults() {
        let a = parse_ok(&[]);
        assert_eq!(a.dataset, Dataset::Figure1);
        assert_eq!(a.query, "TomTom GPS");
        assert_eq!(a.bound, 8);
        assert_eq!(a.algorithm, Algorithm::MultiSwap);
    }

    #[test]
    fn full_flag_set() {
        let a = parse_ok(&[
            "--dataset",
            "movies",
            "--query",
            "war soldier",
            "--bound",
            "5",
            "--threshold",
            "25",
            "--algorithm",
            "single-swap",
            "--select",
            "1,3,4",
            "--seed",
            "9",
            "--stats",
            "--xml",
        ]);
        assert_eq!(a.dataset, Dataset::Movies);
        assert_eq!(a.query, "war soldier");
        assert_eq!(a.bound, 5);
        assert!((a.threshold - 25.0).abs() < 1e-12);
        assert_eq!(a.algorithm, Algorithm::SingleSwap);
        assert_eq!(a.select, vec![1, 3, 4]);
        assert_eq!(a.seed, 9);
        assert!(a.stats && a.show_xml);
    }

    #[test]
    fn dataset_aliases() {
        assert_eq!(parse_ok(&["--dataset", "rei"]).dataset, Dataset::Outdoor);
        assert_eq!(parse_ok(&["--dataset", "imdb"]).dataset, Dataset::Movies);
        assert_eq!(parse_ok(&["--dataset", "paper"]).dataset, Dataset::Figure1);
        assert_eq!(parse_ok(&["--dataset", "hiring"]).dataset, Dataset::Jobs);
    }

    #[test]
    fn default_queries_per_dataset() {
        assert_eq!(parse_ok(&["--dataset", "outdoor"]).query, "men jackets");
        assert_eq!(parse_ok(&["--dataset", "movies"]).query, "drama family");
    }

    #[test]
    fn semantics_and_ranked_flags() {
        let a = parse_ok(&["--semantics", "elca", "--ranked"]);
        assert_eq!(a.semantics, ResultSemantics::Elca);
        assert!(a.ranked);
        assert_eq!(parse_ok(&[]).semantics, ResultSemantics::Slca);
    }

    #[test]
    fn top_and_explain_flags() {
        let a = parse_ok(&["--ranked", "--top", "5", "--explain"]);
        assert_eq!(a.top, Some(5));
        assert!(a.explain);
        let d = parse_ok(&[]);
        assert_eq!(d.top, None);
        assert!(!d.explain);
        let c = parse_corpus_ok(&["corpus", "--explain"]);
        assert!(c.explain);
        let err = |args: &[&str]| parse(args.iter().map(|s| s.to_string())).unwrap_err();
        assert!(err(&["--top", "x"]).0.contains("integer"));
    }

    #[test]
    fn trace_flag_in_single_and_corpus_modes() {
        assert!(parse_ok(&["--trace"]).trace);
        assert!(!parse_ok(&[]).trace);
        assert!(parse_corpus_ok(&["corpus", "--trace"]).trace);
        assert!(!parse_corpus_ok(&["corpus"]).trace);
    }

    #[test]
    fn errors() {
        let err = |args: &[&str]| parse(args.iter().map(|s| s.to_string())).unwrap_err();
        assert!(err(&["--dataset", "bogus"]).0.contains("unknown dataset"));
        assert!(err(&["--bound", "x"]).0.contains("integer"));
        assert!(err(&["--bound"]).0.contains("requires a value"));
        assert!(err(&["--algorithm", "dp"]).0.contains("unknown algorithm"));
        assert!(err(&["--select", "0"]).0.contains("1-based"));
        assert!(err(&["--select", "1,a"]).0.contains("bad result number"));
        assert!(err(&["--semantics", "xlca"]).0.contains("unknown semantics"));
        assert!(err(&["--frobnicate"]).0.contains("unknown flag"));
        assert!(err(&["--help"]).0.contains("USAGE"));
    }

    #[test]
    fn index_persistence_flags() {
        let a = parse_ok(&["--save-index", "/tmp/a.xidx", "--load-index", "/tmp/b.xidx"]);
        assert_eq!(a.save_index.as_deref(), Some("/tmp/a.xidx"));
        assert_eq!(a.load_index.as_deref(), Some("/tmp/b.xidx"));
        assert_eq!(parse_ok(&[]).save_index, None);
    }

    #[test]
    fn corpus_subcommand_defaults() {
        let c = parse_corpus_ok(&["corpus"]);
        assert_eq!(c.dir, None);
        assert_eq!(c.docs, 8);
        assert_eq!(c.movies, 120);
        assert_eq!(c.query, "drama family");
        assert_eq!(c.shards, 0);
        assert_eq!(c.top, 4);
        assert_eq!(c.algorithm, Algorithm::MultiSwap);
    }

    #[test]
    fn corpus_subcommand_full_flag_set() {
        let c = parse_corpus_ok(&[
            "corpus",
            "--dir",
            "data/xml",
            "--docs",
            "3",
            "--movies",
            "50",
            "--seed",
            "7",
            "--query",
            "war soldier",
            "--shards",
            "4",
            "--top",
            "6",
            "--bound",
            "5",
            "--threshold",
            "20",
            "--algorithm",
            "greedy",
            "--index-dir",
            "cache",
        ]);
        assert_eq!(c.dir.as_deref(), Some("data/xml"));
        assert_eq!((c.docs, c.movies, c.seed), (3, 50, 7));
        assert_eq!(c.query, "war soldier");
        assert_eq!((c.shards, c.top, c.bound), (4, 6, 5));
        assert!((c.threshold - 20.0).abs() < 1e-12);
        assert_eq!(c.algorithm, Algorithm::Greedy);
        assert_eq!(c.index_dir.as_deref(), Some("cache"));
    }

    #[test]
    fn corpus_subcommand_errors() {
        let err = |args: &[&str]| parse(args.iter().map(|s| s.to_string())).unwrap_err();
        assert!(err(&["corpus", "--shards", "x"]).0.contains("integer"));
        assert!(err(&["corpus", "--select", "1"]).0.contains("unknown corpus flag"));
        assert!(err(&["corpus", "--help"]).0.contains("CORPUS OPTIONS"));
    }

    fn parse_serve_ok(args: &[&str]) -> ServeArgs {
        match parse(args.iter().map(|s| s.to_string())).expect("parses") {
            Command::Serve(s) => s,
            other => panic!("expected serve mode, got {other:?}"),
        }
    }

    #[test]
    fn serve_subcommand_defaults() {
        let s = parse_serve_ok(&["serve"]);
        assert_eq!(s.addr, "127.0.0.1:4141");
        assert_eq!((s.queue, s.max_batch, s.top), (64, 16, 4));
        assert_eq!(s.budget, None);
        assert_eq!((s.docs, s.movies, s.shards), (8, 120, 0));
        assert_eq!((s.cache_entries, s.cache_bytes), (1024, 4 << 20));
        assert!(!s.mux, "thread-per-connection is the default front end");
    }

    #[test]
    fn serve_cache_and_mux_flags() {
        let s = parse_serve_ok(&["serve", "--cache-entries", "0", "--mux"]);
        assert_eq!(s.cache_entries, 0, "--cache-entries 0 disables the cache");
        assert!(s.mux);
        let s = parse_serve_ok(&["serve", "--cache-entries", "2", "--cache-bytes", "4096"]);
        assert_eq!((s.cache_entries, s.cache_bytes), (2, 4096));
        let err = |args: &[&str]| parse(args.iter().map(|s| s.to_string())).unwrap_err();
        assert!(err(&["serve", "--cache-entries", "x"]).0.contains("integer"));
        assert!(err(&["serve", "--cache-bytes"]).0.contains("requires a value"));
    }

    #[test]
    fn serve_subcommand_full_flag_set() {
        let s = parse_serve_ok(&[
            "serve",
            "--dir",
            "data/xml",
            "--shards",
            "2",
            "--index-dir",
            "cache",
            "--addr",
            "127.0.0.1:0",
            "--queue",
            "8",
            "--max-batch",
            "4",
            "--top",
            "3",
            "--budget",
            "100",
            "--deadline-ms",
            "750",
        ]);
        assert_eq!(s.dir.as_deref(), Some("data/xml"));
        assert_eq!(s.shards, 2);
        assert_eq!(s.index_dir.as_deref(), Some("cache"));
        assert_eq!(s.addr, "127.0.0.1:0");
        assert_eq!((s.queue, s.max_batch, s.top), (8, 4, 3));
        assert_eq!(s.budget, Some(100));
        assert_eq!(s.deadline_ms, Some(750));
    }

    #[test]
    fn serve_observability_flags() {
        let d = parse_serve_ok(&["serve"]);
        assert_eq!(d.metrics_addr, None);
        assert_eq!(d.slow_query_ms, None);
        let s =
            parse_serve_ok(&["serve", "--metrics-addr", "127.0.0.1:0", "--slow-query-ms", "250"]);
        assert_eq!(s.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(s.slow_query_ms, Some(250));
        let err = |args: &[&str]| parse(args.iter().map(|s| s.to_string())).unwrap_err();
        assert!(err(&["serve", "--slow-query-ms", "x"]).0.contains("integer"));
        assert!(err(&["serve", "--metrics-addr"]).0.contains("requires a value"));
    }

    #[test]
    fn client_subcommand_parses() {
        let c = match parse(["client"].iter().map(|s| s.to_string())).expect("parses") {
            Command::Client(c) => c,
            other => panic!("expected client mode, got {other:?}"),
        };
        assert_eq!(c.addr, "127.0.0.1:4141");
        assert_eq!(c.retry_ms, 2000);
        assert_eq!(c.retry_overloaded, 0);
        let c = match parse(
            ["client", "--addr", "127.0.0.1:9", "--retry-ms", "10", "--retry-overloaded", "3"]
                .iter()
                .map(|s| s.to_string()),
        )
        .expect("parses")
        {
            Command::Client(c) => c,
            other => panic!("expected client mode, got {other:?}"),
        };
        assert_eq!(c.addr, "127.0.0.1:9");
        assert_eq!(c.retry_ms, 10);
        assert_eq!(c.retry_overloaded, 3);
        assert_eq!(c.repeat, 1, "--repeat defaults to a single send");
    }

    #[test]
    fn client_repeat_flag() {
        let c = match parse(["client", "--repeat", "5"].iter().map(|s| s.to_string()))
            .expect("parses")
        {
            Command::Client(c) => c,
            other => panic!("expected client mode, got {other:?}"),
        };
        assert_eq!(c.repeat, 5);
        let c = match parse(["client", "--repeat", "0"].iter().map(|s| s.to_string()))
            .expect("parses")
        {
            Command::Client(c) => c,
            other => panic!("expected client mode, got {other:?}"),
        };
        assert_eq!(c.repeat, 1, "--repeat 0 is clamped to one send");
        let err = |args: &[&str]| parse(args.iter().map(|s| s.to_string())).unwrap_err();
        assert!(err(&["client", "--repeat", "x"]).0.contains("integer"));
    }

    #[test]
    fn serve_and_client_errors() {
        let err = |args: &[&str]| parse(args.iter().map(|s| s.to_string())).unwrap_err();
        assert!(err(&["serve", "--queue", "x"]).0.contains("integer"));
        assert!(err(&["serve", "--select", "1"]).0.contains("unknown serve flag"));
        assert!(err(&["serve", "--deadline-ms", "soon"]).0.contains("integer"));
        assert!(err(&["serve", "--help"]).0.contains("SERVE OPTIONS"));
        assert!(err(&["client", "--queue", "1"]).0.contains("unknown client flag"));
        assert!(err(&["client", "--retry-ms"]).0.contains("requires a value"));
        assert!(err(&["client", "--retry-overloaded", "x"]).0.contains("integer"));
    }
}
