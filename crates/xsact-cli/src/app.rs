//! The demo application: dataset loading, search, selection, comparison —
//! the terminal analogue of the paper's Figure 5 result page, wired through
//! the [`Workbench`] pipeline with typed errors.

use crate::args::{Args, Dataset};
use xsact::prelude::*;
use xsact_data::{
    fixtures, JobsGen, JobsGenConfig, MovieGenConfig, MoviesGen, OutdoorGen, OutdoorGenConfig,
    ReviewsGen, ReviewsGenConfig,
};

/// Loads the chosen dataset.
pub fn load_dataset(args: &Args) -> Document {
    match args.dataset {
        Dataset::Figure1 => fixtures::figure1_document(),
        Dataset::Reviews => {
            ReviewsGen::new(ReviewsGenConfig { seed: args.seed, ..Default::default() }).generate()
        }
        Dataset::Outdoor => {
            OutdoorGen::new(OutdoorGenConfig { seed: args.seed, ..Default::default() }).generate()
        }
        Dataset::Movies => {
            MoviesGen::new(MovieGenConfig { seed: args.seed, movies: 250, ..Default::default() })
                .generate()
        }
        Dataset::Jobs => {
            JobsGen::new(JobsGenConfig { seed: args.seed, ..Default::default() }).generate()
        }
    }
}

/// One full demo run. Returns the text to print, so the logic is testable
/// without capturing stdout.
pub fn run(args: &Args) -> Result<String, XsactError> {
    let mut out = String::new();
    let wb = Workbench::from_document(load_dataset(args));
    out.push_str(&format!("dataset: {:?} ({} XML nodes)\n", args.dataset, wb.document().len()));

    let mut pipeline = wb
        .query(&args.query)?
        .semantics(args.semantics)
        .ranked(args.ranked)
        .size_bound(args.bound)
        .threshold(args.threshold);
    pipeline = if args.select.is_empty() {
        pipeline.take(4) // the demo defaults to the first four checkboxes
    } else {
        pipeline.select(args.select.iter().copied())
    };
    let query = pipeline.query_text();

    // Result list with snippet-ish labels (Figure 5's result page).
    let results = if args.ranked {
        let ranked = pipeline.ranked_results();
        out.push_str(&format!("query {query}: {} results (ranked)\n", ranked.len()));
        for (i, (r, score)) in ranked.iter().enumerate() {
            out.push_str(&format!("  [{:>2}] {}  (score {:.3})\n", i + 1, r.label, score.score));
        }
        ranked.into_iter().map(|(r, _)| r).collect::<Vec<_>>()
    } else {
        let results = pipeline.results();
        out.push_str(&format!("query {query}: {} results\n", results.len()));
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!("  [{:>2}] {}\n", i + 1, r.label));
        }
        results
    };
    if results.is_empty() {
        out.push_str("no results — nothing to compare\n");
        return Ok(out);
    }

    // Selection: the ticked checkboxes (typed out-of-range errors).
    let selected = pipeline.selection()?;
    out.push_str(&format!(
        "\ncomparing {} results (L = {}, x = {}%, {}):\n",
        selected.len(),
        args.bound,
        args.threshold,
        args.algorithm.name()
    ));

    if args.stats {
        for r in &selected {
            let rf = wb.features_for(r);
            out.push_str(&format!("\nstatistics of {}:\n", rf.label));
            for line in rf.stat_panel(6) {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out.push('\n');
    }
    if args.show_xml {
        for r in &selected {
            out.push_str(&format!("\n{}\n", wb.result_xml(r)));
        }
        out.push('\n');
    }

    if selected.len() < 2 {
        out.push_str("(need at least two selected results for a comparison table)\n");
        return Ok(out);
    }

    let outcome: ComparisonOutcome = pipeline.compare(args.algorithm)?;
    out.push_str(&outcome.table());
    out.push_str(&format!(
        "DoD = {} (upper bound {}), {} rounds, {} moves, {:?}\n",
        outcome.dod(),
        outcome.dod_upper_bound(),
        outcome.stats.rounds,
        outcome.stats.moves,
        outcome.stats.elapsed
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    fn args_for(dataset: &str, extra: &[&str]) -> Args {
        let mut argv = vec!["--dataset".to_string(), dataset.to_string()];
        argv.extend(extra.iter().map(|s| s.to_string()));
        args::parse(argv.into_iter()).expect("valid args")
    }

    #[test]
    fn figure1_demo_reports_dod_5() {
        let a = args_for("figure1", &["--bound", "7"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("2 results"));
        assert!(out.contains("DoD = 5"));
        assert!(out.contains("TomTom Go 630 Portable GPS"));
    }

    #[test]
    fn stats_and_xml_flags() {
        let a = args_for("figure1", &["--stats", "--xml"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("# of reviews: 11"));
        assert!(out.contains("<product>"));
    }

    #[test]
    fn movies_demo_runs() {
        let a = args_for("movies", &["--bound", "6", "--algorithm", "single-swap"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("single-swap"));
        assert!(out.contains("DoD ="));
    }

    #[test]
    fn outdoor_demo_runs() {
        let a = args_for("outdoor", &[]);
        let out = run(&a).expect("runs");
        assert!(out.contains("results"));
    }

    #[test]
    fn reviews_demo_runs() {
        let a = args_for("reviews", &["--select", "1,2"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("comparing 2 results"));
    }

    #[test]
    fn ranked_mode_shows_scores() {
        let a = args_for("figure1", &["--ranked"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("(score "));
        assert!(out.contains("(ranked)"));
    }

    #[test]
    fn elca_semantics_runs() {
        let a = args_for("figure1", &["--semantics", "elca"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("results"));
    }

    #[test]
    fn jobs_demo_runs() {
        let a = args_for("jobs", &["--bound", "6"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("results"));
    }

    #[test]
    fn bad_selection_is_a_typed_error() {
        let a = args_for("figure1", &["--select", "9"]);
        let err = run(&a).unwrap_err();
        assert!(matches!(err, XsactError::InvalidSelection { index: 9, available: 2 }));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn unmatched_query_is_graceful() {
        let a = args_for("figure1", &["--query", "zeppelin"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("0 results"));
        assert!(out.contains("nothing to compare"));
    }

    #[test]
    fn empty_query_is_a_typed_error() {
        let a = args_for("figure1", &["--query", "!!!"]);
        assert!(matches!(run(&a), Err(XsactError::EmptyQuery)));
    }
}
