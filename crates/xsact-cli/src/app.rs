//! The demo application: dataset loading, search, selection, comparison —
//! the terminal analogue of the paper's Figure 5 result page.

use crate::args::{Args, Dataset};
use xsact_core::{Comparison, ComparisonOutcome};
use xsact_data::{
    fixtures, JobsGen, JobsGenConfig, MovieGenConfig, MoviesGen, OutdoorGen, OutdoorGenConfig,
    ReviewsGen, ReviewsGenConfig,
};
use xsact_entity::ResultFeatures;
use xsact_index::{Query, SearchEngine, SearchResult};
use xsact_xml::Document;

/// Loads the chosen dataset.
pub fn load_dataset(args: &Args) -> Document {
    match args.dataset {
        Dataset::Figure1 => fixtures::figure1_document(),
        Dataset::Reviews => ReviewsGen::new(ReviewsGenConfig {
            seed: args.seed,
            ..Default::default()
        })
        .generate(),
        Dataset::Outdoor => OutdoorGen::new(OutdoorGenConfig {
            seed: args.seed,
            ..Default::default()
        })
        .generate(),
        Dataset::Movies => MoviesGen::new(MovieGenConfig {
            seed: args.seed,
            movies: 250,
            ..Default::default()
        })
        .generate(),
        Dataset::Jobs => JobsGen::new(JobsGenConfig {
            seed: args.seed,
            ..Default::default()
        })
        .generate(),
    }
}

/// One full demo run. Returns the text to print, so the logic is testable
/// without capturing stdout.
pub fn run(args: &Args) -> Result<String, String> {
    let mut out = String::new();
    let doc = load_dataset(args);
    out.push_str(&format!(
        "dataset: {:?} ({} XML nodes)\n",
        args.dataset,
        doc.len()
    ));
    let engine = SearchEngine::build(doc);
    let query = Query::parse(&args.query);
    if query.is_empty() {
        return Err("the query contains no search terms".to_owned());
    }
    let results = if args.ranked {
        let ranked = engine.search_ranked(&query);
        out.push_str(&format!("query {query}: {} results (ranked)\n", ranked.len()));
        for (i, (r, score)) in ranked.iter().enumerate() {
            out.push_str(&format!(
                "  [{:>2}] {}  (score {:.3})\n",
                i + 1,
                r.label,
                score.score
            ));
        }
        ranked.into_iter().map(|(r, _)| r).collect::<Vec<_>>()
    } else {
        let results = engine.search_with(&query, args.semantics);
        out.push_str(&format!("query {query}: {} results\n", results.len()));
        // Result list with snippet-ish labels (Figure 5's result page).
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!("  [{:>2}] {}\n", i + 1, r.label));
        }
        results
    };
    if results.is_empty() {
        out.push_str("no results — nothing to compare\n");
        return Ok(out);
    }

    // Selection: the ticked checkboxes.
    let selected = select_results(&results, &args.select)?;
    out.push_str(&format!(
        "\ncomparing {} results (L = {}, x = {}%, {}):\n",
        selected.len(),
        args.bound,
        args.threshold,
        args.algorithm.name()
    ));

    let features: Vec<ResultFeatures> =
        selected.iter().map(|r| engine.extract_features(r)).collect();

    if args.stats {
        for rf in &features {
            out.push_str(&format!("\nstatistics of {}:\n", rf.label));
            for line in rf.stat_panel(6) {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out.push('\n');
    }
    if args.show_xml {
        for r in &selected {
            out.push_str(&format!("\n{}\n", engine.result_xml(r)));
        }
        out.push('\n');
    }

    if features.len() < 2 {
        out.push_str("(need at least two selected results for a comparison table)\n");
        return Ok(out);
    }

    let outcome: ComparisonOutcome = Comparison::new(&features)
        .size_bound(args.bound)
        .threshold(args.threshold)
        .run(args.algorithm);
    out.push_str(&outcome.table());
    out.push_str(&format!(
        "DoD = {} (upper bound {}), {} rounds, {} moves, {:?}\n",
        outcome.dod(),
        outcome.dod_upper_bound(),
        outcome.stats.rounds,
        outcome.stats.moves,
        outcome.stats.elapsed
    ));
    Ok(out)
}

/// Applies the `--select` list (1-based), defaulting to the first four
/// results.
fn select_results(
    results: &[SearchResult],
    select: &[usize],
) -> Result<Vec<SearchResult>, String> {
    if select.is_empty() {
        return Ok(results.iter().take(4).cloned().collect());
    }
    select
        .iter()
        .map(|&i| {
            results
                .get(i - 1)
                .cloned()
                .ok_or_else(|| format!("--select {i} is out of range (1..={})", results.len()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    fn args_for(dataset: &str, extra: &[&str]) -> Args {
        let mut argv = vec!["--dataset".to_string(), dataset.to_string()];
        argv.extend(extra.iter().map(|s| s.to_string()));
        args::parse(argv.into_iter()).expect("valid args")
    }

    #[test]
    fn figure1_demo_reports_dod_5() {
        let a = args_for("figure1", &["--bound", "7"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("2 results"));
        assert!(out.contains("DoD = 5"));
        assert!(out.contains("TomTom Go 630 Portable GPS"));
    }

    #[test]
    fn stats_and_xml_flags() {
        let a = args_for("figure1", &["--stats", "--xml"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("# of reviews: 11"));
        assert!(out.contains("<product>"));
    }

    #[test]
    fn movies_demo_runs() {
        let a = args_for("movies", &["--bound", "6", "--algorithm", "single-swap"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("single-swap"));
        assert!(out.contains("DoD ="));
    }

    #[test]
    fn outdoor_demo_runs() {
        let a = args_for("outdoor", &[]);
        let out = run(&a).expect("runs");
        assert!(out.contains("results"));
    }

    #[test]
    fn reviews_demo_runs() {
        let a = args_for("reviews", &["--select", "1,2"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("comparing 2 results"));
    }

    #[test]
    fn ranked_mode_shows_scores() {
        let a = args_for("figure1", &["--ranked"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("(score "));
        assert!(out.contains("(ranked)"));
    }

    #[test]
    fn elca_semantics_runs() {
        let a = args_for("figure1", &["--semantics", "elca"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("results"));
    }

    #[test]
    fn jobs_demo_runs() {
        let a = args_for("jobs", &["--bound", "6"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("results"));
    }

    #[test]
    fn bad_selection_is_reported() {
        let a = args_for("figure1", &["--select", "9"]);
        let err = run(&a).unwrap_err();
        assert!(err.contains("out of range"));
    }

    #[test]
    fn unmatched_query_is_graceful() {
        let a = args_for("figure1", &["--query", "zeppelin"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("0 results"));
        assert!(out.contains("nothing to compare"));
    }

    #[test]
    fn empty_query_is_an_error() {
        let a = args_for("figure1", &["--query", "!!!"]);
        assert!(run(&a).is_err());
    }
}
