//! The demo application: dataset loading, search, selection, comparison —
//! the terminal analogue of the paper's Figure 5 result page, wired through
//! the [`Workbench`] pipeline with typed errors.

use crate::args::{Args, ClientArgs, CorpusArgs, Dataset, ServeArgs};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xsact::prelude::*;
use xsact::serve::{serve_tcp, serve_tcp_mux, FaultPlan, END_MARKER};
use xsact_data::{
    fixtures, JobsGen, JobsGenConfig, MovieGenConfig, MoviesGen, OutdoorGen, OutdoorGenConfig,
    ReviewsGen, ReviewsGenConfig,
};

/// Loads the chosen dataset.
pub fn load_dataset(args: &Args) -> Document {
    match args.dataset {
        Dataset::Figure1 => fixtures::figure1_document(),
        Dataset::Reviews => {
            ReviewsGen::new(ReviewsGenConfig { seed: args.seed, ..Default::default() }).generate()
        }
        Dataset::Outdoor => {
            OutdoorGen::new(OutdoorGenConfig { seed: args.seed, ..Default::default() }).generate()
        }
        Dataset::Movies => {
            MoviesGen::new(MovieGenConfig { seed: args.seed, movies: 250, ..Default::default() })
                .generate()
        }
        Dataset::Jobs => {
            JobsGen::new(JobsGenConfig { seed: args.seed, ..Default::default() }).generate()
        }
    }
}

/// One full demo run. Returns the text to print, so the logic is testable
/// without capturing stdout.
pub fn run(args: &Args) -> Result<String, XsactError> {
    // Every successful exit of the inner run hands back the executor
    // counters, so the --explain line is appended in exactly one place.
    let sink = args.trace.then(TraceSink::new);
    let (mut out, stats) = run_single(args, sink.as_ref())?;
    if args.explain {
        out.push_str(&explain_line(stats));
    }
    // The trace table is appended last, after every result line, so
    // scripted consumers can strip it without touching the answer.
    if let Some(sink) = &sink {
        out.push_str("\ntrace:\n");
        out.push_str(&sink.take().render());
    }
    Ok(out)
}

fn run_single(
    args: &Args,
    trace: Option<&TraceSink>,
) -> Result<(String, ExecutorStats), XsactError> {
    let mut out = String::new();
    let doc = load_dataset(args);
    let wb = match &args.load_index {
        // A persisted index skips the indexing scan; the fingerprint check
        // inside rejects an index saved for a different dataset/seed.
        Some(path) => {
            let mut file = std::fs::File::open(path)?;
            let wb = Workbench::from_persisted_index(doc, &mut file)?;
            out.push_str(&format!("index: restored from {path}\n"));
            wb
        }
        None => Workbench::from_document(doc),
    };
    if let Some(path) = &args.save_index {
        xsact::save_index_atomic(&wb, std::path::Path::new(path))?;
        out.push_str(&format!("index: saved to {path}\n"));
    }
    out.push_str(&format!("dataset: {:?} ({} XML nodes)\n", args.dataset, wb.document().len()));

    let pipeline = match trace {
        Some(sink) => wb.query_traced(&args.query, sink),
        None => wb.query(&args.query),
    }?;
    let mut pipeline = pipeline
        .semantics(args.semantics)
        .ranked(args.ranked)
        .size_bound(args.bound)
        .threshold(args.threshold);
    pipeline = if args.select.is_empty() {
        // The demo defaults to the first four checkboxes; --top overrides.
        pipeline.take(args.top.unwrap_or(4))
    } else {
        pipeline.select(args.select.iter().copied())
    };
    let query = pipeline.query_text();

    // Result list with snippet-ish labels (Figure 5's result page).
    // --select picks positions in the full list, so it disables the
    // bounded listing (and with it --top, mirroring the pipeline's
    // select-over-take precedence).
    let bounded = args.ranked && args.top.is_some() && args.select.is_empty();
    let results = if args.ranked {
        let ranked = if bounded {
            // Bounded mode: the streaming executor materialises only the
            // best k results — the full ranking never exists.
            pipeline.top_results()
        } else {
            pipeline.ranked_results()
        };
        let top = if bounded { "top " } else { "" };
        out.push_str(&format!("query {query}: {top}{} results (ranked)\n", ranked.len()));
        for (i, (r, score)) in ranked.iter().enumerate() {
            out.push_str(&format!("  [{:>2}] {}  (score {:.3})\n", i + 1, r.label, score.score));
        }
        ranked.into_iter().map(|(r, _)| r).collect::<Vec<_>>()
    } else {
        let results = pipeline.results();
        out.push_str(&format!("query {query}: {} results\n", results.len()));
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!("  [{:>2}] {}\n", i + 1, r.label));
        }
        results
    };
    if results.is_empty() {
        let stats = pipeline.executor_stats().unwrap_or_default();
        // `--top 0` told the bounded executor to keep nothing, which is
        // not the same as the query matching nothing — a matching query
        // always scans at least one posting, so zeroed counters mean the
        // planner proved the query hopeless.
        if bounded && args.top == Some(0) && !stats.is_zero() {
            out.push_str("(--top 0 leaves fewer than the two results a comparison needs)\n");
        } else {
            out.push_str("no results — nothing to compare\n");
        }
        return Ok((out, stats));
    }

    // Selection: the ticked checkboxes (typed out-of-range errors).
    let selected = pipeline.selection()?;
    out.push_str(&format!(
        "\ncomparing {} results (L = {}, x = {}%, {}):\n",
        selected.len(),
        args.bound,
        args.threshold,
        args.algorithm.name()
    ));

    if args.stats {
        for r in &selected {
            let rf = wb.features_for(r);
            out.push_str(&format!("\nstatistics of {}:\n", rf.label));
            for line in rf.stat_panel(6) {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out.push('\n');
    }
    if args.show_xml {
        for r in &selected {
            out.push_str(&format!("\n{}\n", wb.result_xml(r)));
        }
        out.push('\n');
    }

    if selected.len() < 2 {
        out.push_str("(need at least two selected results for a comparison table)\n");
        return Ok((out, pipeline.executor_stats().unwrap_or_default()));
    }

    let outcome: ComparisonOutcome = pipeline.compare(args.algorithm)?;
    out.push_str(&outcome.table());
    out.push_str(&format!(
        "DoD = {} (upper bound {}), {} rounds, {} moves, {:?}\n",
        outcome.dod(),
        outcome.dod_upper_bound(),
        outcome.stats.rounds,
        outcome.stats.moves,
        outcome.stats.elapsed
    ));
    Ok((out, pipeline.executor_stats().unwrap_or_default()))
}

/// Renders [`ExecutorStats`] as the one-line `--explain` report (single
/// mode, corpus mode, and the serve shutdown summary all use this).
fn explain_line(stats: ExecutorStats) -> String {
    format!("executor: {stats}\n")
}

/// One corpus-mode run: ingest a directory (or generate a synthetic
/// fleet), fan the query out across shards, print the merged ranking and
/// the cross-document comparison table.
pub fn run_corpus(args: &CorpusArgs) -> Result<String, XsactError> {
    let sink = args.trace.then(TraceSink::new);
    let (mut out, stats) = run_corpus_inner(args, sink.as_ref())?;
    if args.explain {
        out.push_str(&explain_line(stats));
    }
    if let Some(sink) = &sink {
        out.push_str("\ntrace:\n");
        out.push_str(&sink.take().render());
    }
    Ok(out)
}

fn run_corpus_inner(
    args: &CorpusArgs,
    trace: Option<&TraceSink>,
) -> Result<(String, ExecutorStats), XsactError> {
    // Validate the cheap knobs before paying for ingestion and fan-out —
    // compare() would reject them anyway, but only after the whole query.
    if !args.threshold.is_finite() || args.threshold < 0.0 {
        return Err(XsactError::InvalidConfig(format!(
            "differentiability threshold must be a non-negative percentage, got {}",
            args.threshold
        )));
    }
    let mut out = String::new();
    let ingest_start = Instant::now();
    let mut corpus = match (&args.dir, &args.index_dir) {
        (Some(dir), Some(cache)) => Corpus::from_dir_cached(dir, cache)?,
        (Some(dir), None) => Corpus::from_dir(dir)?,
        (None, Some(_)) => {
            // A synthetic fleet is regenerated from scratch every run, so a
            // cache it would never read back is a configuration mistake.
            return Err(XsactError::InvalidConfig(
                "--index-dir requires --dir (a synthetic fleet never reloads its cache)".into(),
            ));
        }
        (None, None) => Corpus::synthetic_movies(args.docs, args.movies, args.seed),
    };
    let ingested = ingest_start.elapsed();
    if args.shards > 0 {
        corpus.set_shards(args.shards);
    }
    let total_nodes: usize =
        (0..corpus.len()).map(|i| corpus.workbench(DocId(i as u32)).document().len()).sum();
    out.push_str(&format!(
        "corpus: {} documents, {} XML nodes, {} shards (effective {}), ingested in {:.1?}\n",
        corpus.len(),
        total_nodes,
        corpus.shards(),
        corpus.effective_shards(),
        ingested
    ));

    let query = match trace {
        Some(sink) => corpus.query_traced(&args.query, sink),
        None => corpus.query(&args.query),
    }?
    .top(args.top)
    .size_bound(args.bound)
    .threshold(args.threshold);
    let query_start = Instant::now();
    let ranking = query.ranking();
    let fanned_out = query_start.elapsed();
    let matched_docs: std::collections::HashSet<_> = ranking.hits.iter().map(|h| h.doc).collect();
    out.push_str(&format!(
        "query {}: {} results from {} of {} documents in {:.1?}\n",
        query.query_text(),
        ranking.hits.len(),
        matched_docs.len(),
        corpus.len(),
        fanned_out
    ));
    out.push_str(&ranking.render(args.top.max(8)));
    if ranking.hits.is_empty() {
        out.push_str("no results — nothing to compare\n");
        return Ok((out, corpus.executor_stats()));
    }
    if ranking.hits.len() < 2 {
        out.push_str("(need at least two results for a comparison table)\n");
        return Ok((out, corpus.executor_stats()));
    }
    if args.top < 2 {
        out.push_str(&format!(
            "(--top {} leaves fewer than the two results a comparison needs)\n",
            args.top
        ));
        return Ok((out, corpus.executor_stats()));
    }

    let outcome = query.compare(args.algorithm)?;
    out.push_str(&format!(
        "\ncomparing the top {} (L = {}, x = {}%, {}):\n",
        outcome.hits.len(),
        args.bound,
        args.threshold,
        args.algorithm.name()
    ));
    out.push_str(&outcome.table());
    let spanned: std::collections::HashSet<_> = outcome.hits.iter().map(|h| h.doc).collect();
    out.push_str(&format!(
        "DoD = {} over {} results from {} document{}\n",
        outcome.dod(),
        outcome.hits.len(),
        spanned.len(),
        if spanned.len() == 1 { "" } else { "s" }
    ));
    Ok((out, corpus.executor_stats()))
}

/// Builds the corpus a server will hold, from the same source knobs as
/// corpus mode (directory with optional index cache, or a synthetic
/// fleet).
fn build_serve_corpus(args: &ServeArgs) -> Result<Corpus, XsactError> {
    let mut corpus = match (&args.dir, &args.index_dir) {
        (Some(dir), Some(cache)) => Corpus::from_dir_cached(dir, cache)?,
        (Some(dir), None) => Corpus::from_dir(dir)?,
        (None, Some(_)) => {
            return Err(XsactError::InvalidConfig(
                "--index-dir requires --dir (a synthetic fleet never reloads its cache)".into(),
            ));
        }
        (None, None) => Corpus::synthetic_movies(args.docs, args.movies, args.seed),
    };
    if args.shards > 0 {
        corpus.set_shards(args.shards);
    }
    Ok(corpus)
}

/// The `serve` subcommand: run the corpus server over TCP until a client
/// sends `SHUTDOWN`. The listening line is printed (and flushed)
/// immediately so scripts can tell the server is up; the returned string
/// is the post-shutdown counter summary.
pub fn run_serve(args: &ServeArgs) -> Result<String, XsactError> {
    let corpus = Arc::new(build_serve_corpus(args)?);
    // Fault injection is armed from the environment exactly once, at
    // startup — request paths only ever see the parsed plan.
    let faults = FaultPlan::from_env().map_err(XsactError::InvalidConfig)?;
    if faults.is_armed() {
        eprintln!("xsact-serve: fault injection armed (chaos testing)");
    }
    let config = ServeConfig {
        queue_capacity: args.queue,
        max_batch: args.max_batch,
        default_top: args.top,
        budget: args.budget,
        slow_query: args.slow_query_ms.map(Duration::from_millis),
        deadline: args.deadline_ms.map(Duration::from_millis),
        cache_entries: args.cache_entries,
        cache_bytes: args.cache_bytes,
        faults,
        ..ServeConfig::default()
    };
    let server = CorpusServer::start(Arc::clone(&corpus), config);
    let registry = server.metrics_registry();
    // The two front ends are wire-identical; --mux only changes the
    // threading model (one poll-driven thread vs one thread per
    // connection). Deliberately absent from the config print below, so a
    // mux run diffs clean against a thread-per-connection golden.
    let handle =
        if args.mux { serve_tcp_mux(server, &args.addr)? } else { serve_tcp(server, &args.addr)? };
    // The HTTP endpoint scrapes the same registry the METRICS verb reads.
    let metrics = match &args.metrics_addr {
        Some(addr) => Some(xsact::obs::serve_metrics(registry, addr)?),
        None => None,
    };
    println!(
        "xsact-serve: {} documents, {} shards (effective {}), queue {}, max batch {}, top {}{}",
        corpus.len(),
        corpus.shards(),
        corpus.effective_shards(),
        args.queue,
        args.max_batch,
        args.top,
        match args.budget {
            Some(b) => format!(", budget {b}"),
            None => String::new(),
        }
    );
    match args.cache_entries {
        0 => println!("result-page cache disabled"),
        entries => println!("result-page cache: {} entries, {} bytes", entries, args.cache_bytes),
    }
    if let Some(metrics) = &metrics {
        println!("metrics on http://{}/metrics", metrics.addr());
    }
    println!("listening on {}", handle.addr());
    std::io::stdout().flush()?;
    let stats = handle.wait();
    drop(metrics); // stop the scrape endpoint before reporting
    let executor = ExecutorStats {
        postings_scanned: stats.postings_scanned,
        gallop_probes: stats.gallop_probes,
        candidates_pruned: stats.candidates_pruned,
        postings_shared: stats.postings_shared,
    };
    Ok(format!("shutdown complete\n{stats}\n{}", explain_line(executor)))
}

/// The `client` subcommand: read request lines from stdin, send each to
/// the server, and print every response body (the lone `.` terminator is
/// consumed, not printed — output is exactly what the server said).
/// With `--retry-overloaded <n>`, a request answered `ERR OVERLOADED` is
/// resent up to `n` times under exponential backoff before its (final)
/// response is printed.
pub fn run_client(args: &ClientArgs) -> Result<String, XsactError> {
    let stream = connect_with_retry(&args.addr, args.retry_ms)?;
    let mut writer = stream.try_clone()?;
    let mut responses = BufReader::new(stream).lines();
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        // --repeat sends the same request N times (the warm/hit loop of a
        // cache experiment); each send prints its own response.
        for _ in 0..args.repeat.max(1) {
            let mut attempt = 0u32;
            loop {
                writer.write_all(format!("{request}\n").as_bytes())?;
                // Server closed the stream mid-response (shutdown race, or
                // a dropped connection) — nothing more to print.
                let Some(body) = read_response(&mut responses) else { return Ok(String::new()) };
                if attempt < args.retry_overloaded
                    && body.first().is_some_and(|l| l.starts_with("ERR OVERLOADED"))
                {
                    std::thread::sleep(overload_backoff(request, attempt));
                    attempt += 1;
                    continue;
                }
                for l in &body {
                    println!("{l}");
                }
                break;
            }
            if request == "QUIT" || request == "SHUTDOWN" {
                return Ok(String::new());
            }
        }
    }
    Ok(String::new())
}

/// Reads one response body (every line up to the lone `.` marker, which
/// is consumed); `None` when the server closed the stream mid-response.
fn read_response(
    responses: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Option<Vec<String>> {
    let mut body = Vec::new();
    loop {
        match responses.next() {
            Some(Ok(l)) if l == END_MARKER => return Some(body),
            Some(Ok(l)) => body.push(l),
            Some(Err(_)) | None => return None,
        }
    }
}

/// Backoff before overload-retry `attempt`: a doubling 25 ms base plus a
/// 0..16 ms jitter hashed (FNV-1a) from the request text and the attempt
/// number — concurrent clients de-synchronise without an RNG, and reruns
/// are bit-reproducible.
fn overload_backoff(request: &str, attempt: u32) -> Duration {
    let mut hasher = xsact::xml::FnvHasher::new();
    hasher.write(request.as_bytes());
    hasher.write(&attempt.to_le_bytes());
    let jitter_ms = hasher.finish() % 16;
    Duration::from_millis(25u64.saturating_mul(1u64 << attempt.min(6)) + jitter_ms)
}

/// Retries the connect until it succeeds or `total_ms` elapses, so a
/// scripted client can be started in the same breath as the server.
fn connect_with_retry(addr: &str, total_ms: u64) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + Duration::from_millis(total_ms);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    fn args_for(dataset: &str, extra: &[&str]) -> Args {
        let mut argv = vec!["--dataset".to_string(), dataset.to_string()];
        argv.extend(extra.iter().map(|s| s.to_string()));
        match args::parse(argv.into_iter()).expect("valid args") {
            args::Command::Single(a) => a,
            other => panic!("expected single mode: {other:?}"),
        }
    }

    fn corpus_args_for(extra: &[&str]) -> CorpusArgs {
        let mut argv = vec!["corpus".to_string()];
        argv.extend(extra.iter().map(|s| s.to_string()));
        match args::parse(argv.into_iter()).expect("valid args") {
            args::Command::Corpus(c) => c,
            other => panic!("expected corpus mode: {other:?}"),
        }
    }

    /// A scratch directory wiped on drop, so test artefacts never leak.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!("xsact-cli-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }

        fn path(&self, file: &str) -> String {
            self.0.join(file).to_string_lossy().into_owned()
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn figure1_demo_reports_dod_5() {
        let a = args_for("figure1", &["--bound", "7"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("2 results"));
        assert!(out.contains("DoD = 5"));
        assert!(out.contains("TomTom Go 630 Portable GPS"));
    }

    #[test]
    fn stats_and_xml_flags() {
        let a = args_for("figure1", &["--stats", "--xml"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("# of reviews: 11"));
        assert!(out.contains("<product>"));
    }

    #[test]
    fn movies_demo_runs() {
        let a = args_for("movies", &["--bound", "6", "--algorithm", "single-swap"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("single-swap"));
        assert!(out.contains("DoD ="));
    }

    #[test]
    fn outdoor_demo_runs() {
        let a = args_for("outdoor", &[]);
        let out = run(&a).expect("runs");
        assert!(out.contains("results"));
    }

    #[test]
    fn reviews_demo_runs() {
        let a = args_for("reviews", &["--select", "1,2"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("comparing 2 results"));
    }

    #[test]
    fn ranked_mode_shows_scores() {
        let a = args_for("figure1", &["--ranked"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("(score "));
        assert!(out.contains("(ranked)"));
    }

    #[test]
    fn ranked_top_bounds_the_listing() {
        // The movies demo has many results; --top 3 must list exactly the
        // best three — the same three the unbounded ranking leads with.
        let full = run(&args_for("movies", &["--ranked"])).expect("full run");
        let bounded = run(&args_for("movies", &["--ranked", "--top", "3"])).expect("bounded run");
        assert!(bounded.contains("top 3 results (ranked)"), "{bounded}");
        assert!(!bounded.contains("[ 4]"), "only three entries listed:\n{bounded}");
        fn listing(s: &str, n: usize) -> Vec<&str> {
            s.lines().filter(|l| l.trim_start().starts_with('[')).take(n).collect()
        }
        assert_eq!(listing(&full, 3), listing(&bounded, 3), "same best three, same order");
    }

    #[test]
    fn top_without_ranked_overrides_the_default_selection() {
        let out = run(&args_for("movies", &["--top", "2"])).expect("runs");
        assert!(out.contains("comparing 2 results"), "{out}");
    }

    #[test]
    fn select_disables_the_bounded_top_listing() {
        // --select picks positions in the full list; --top must not bound
        // (or mislabel) the listing, and only one search may run.
        let a = args_for("movies", &["--ranked", "--top", "2", "--select", "1,3"]);
        let out = run(&a).expect("runs");
        assert!(!out.contains("top "), "full listing expected:\n{out}");
        assert!(out.contains("results (ranked)"), "{out}");
        assert!(out.contains("comparing 2 results"), "{out}");
    }

    #[test]
    fn ranked_top_zero_is_not_reported_as_no_results() {
        let out = run(&args_for("movies", &["--ranked", "--top", "0"])).expect("runs");
        assert!(out.contains("--top 0 leaves fewer"), "{out}");
        assert!(!out.contains("no results"), "{out}");
        // …but a query that truly matches nothing says so, even at --top 0.
        let none = run(&args_for("movies", &["--ranked", "--top", "0", "--query", "zeppelin"]))
            .expect("runs");
        assert!(none.contains("no results"), "{none}");
        assert!(!none.contains("--top 0 leaves fewer"), "{none}");
    }

    #[test]
    fn explain_prints_executor_counters() {
        let out = run(&args_for("figure1", &["--explain"])).expect("runs");
        assert!(out.contains("executor: "), "{out}");
        assert!(out.contains("postings scanned"), "{out}");
        // A zero-postings term short-circuits: all counters stay zero.
        let empty =
            run(&args_for("figure1", &["--query", "tomtom zeppelin", "--explain"])).expect("runs");
        assert!(
            empty.contains("executor: 0 postings scanned, 0 gallop probes, 0 candidates pruned"),
            "{empty}"
        );
    }

    #[test]
    fn trace_prints_a_per_stage_table_after_the_answer() {
        let out = run(&args_for("figure1", &["--trace"])).expect("runs");
        let (answer, trace) = out.split_once("\ntrace:\n").expect("trace section appended");
        assert!(answer.contains("DoD = 5"), "answer precedes the trace:\n{out}");
        for stage in ["stage", "parse", "plan", "slca-stream", "total"] {
            assert!(trace.contains(stage), "missing {stage} in trace:\n{trace}");
        }
        assert!(!run(&args_for("figure1", &[])).expect("runs").contains("\ntrace:\n"));
    }

    #[test]
    fn corpus_trace_shows_per_shard_spans() {
        let c = corpus_args_for(&["--docs", "3", "--movies", "30", "--shards", "2", "--trace"]);
        let out = run_corpus(&c).expect("corpus run");
        let (_, trace) = out.split_once("\ntrace:\n").expect("trace section appended");
        for stage in ["parse", "shard 0", "shard 1", "merge", "total"] {
            assert!(trace.contains(stage), "missing {stage} in trace:\n{trace}");
        }
    }

    #[test]
    fn elca_semantics_runs() {
        let a = args_for("figure1", &["--semantics", "elca"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("results"));
    }

    #[test]
    fn jobs_demo_runs() {
        let a = args_for("jobs", &["--bound", "6"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("results"));
    }

    #[test]
    fn bad_selection_is_a_typed_error() {
        let a = args_for("figure1", &["--select", "9"]);
        let err = run(&a).unwrap_err();
        assert!(matches!(err, XsactError::InvalidSelection { index: 9, available: 2 }));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn unmatched_query_is_graceful() {
        let a = args_for("figure1", &["--query", "zeppelin"]);
        let out = run(&a).expect("runs");
        assert!(out.contains("0 results"));
        assert!(out.contains("nothing to compare"));
    }

    #[test]
    fn empty_query_is_a_typed_error() {
        let a = args_for("figure1", &["--query", "!!!"]);
        assert!(matches!(run(&a), Err(XsactError::EmptyQuery)));
    }

    #[test]
    fn save_then_load_index_round_trips() {
        let tmp = TempDir::new("roundtrip");
        let path = tmp.path("movies.xidx");
        let save = args_for("movies", &["--bound", "6", "--save-index", &path]);
        let saved_out = run(&save).expect("save run");
        assert!(saved_out.contains("index: saved to"));
        let load = args_for("movies", &["--bound", "6", "--load-index", &path]);
        let loaded_out = run(&load).expect("load run");
        assert!(loaded_out.contains("index: restored from"));
        // Same dataset + same index ⇒ identical results and table.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("index:"))
                // Timings differ run to run; drop the trailing stats line.
                .filter(|l| !l.contains("rounds"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&saved_out), strip(&loaded_out));
    }

    #[test]
    fn loading_an_index_of_another_dataset_is_rejected() {
        let tmp = TempDir::new("mismatch");
        let path = tmp.path("figure1.xidx");
        run(&args_for("figure1", &["--save-index", &path])).expect("save run");
        // The jobs dataset has a different fingerprint → typed I/O error.
        let err = run(&args_for("jobs", &["--load-index", &path])).unwrap_err();
        assert!(matches!(err, XsactError::Io(_)));
    }

    #[test]
    fn corpus_mode_reports_merged_ranking_and_table() {
        let c = corpus_args_for(&["--docs", "4", "--movies", "40", "--shards", "2"]);
        let out = run_corpus(&c).expect("corpus run");
        assert!(out.contains("corpus: 4 documents"));
        assert!(out.contains("2 shards"));
        assert!(out.contains("@movies-0"), "hits tagged with document names:\n{out}");
        assert!(out.contains("DoD = "));
    }

    #[test]
    fn corpus_mode_ingests_directories_with_index_cache() {
        let tmp = TempDir::new("corpusdir");
        for (name, kind) in [("east", "gps"), ("west", "gps navigation")] {
            std::fs::write(
                std::path::Path::new(&tmp.path(&format!("{name}.xml"))),
                format!(
                    "<shop><product><name>{name} unit</name><kind>{kind}</kind></product></shop>"
                ),
            )
            .unwrap();
        }
        let cache = tmp.path("index-cache");
        let flags = ["--dir", &tmp.path(""), "--query", "gps", "--top", "2", "--index-dir", &cache];
        let cold: Vec<String> = flags.iter().map(|s| s.to_string()).collect();
        let cold_args = corpus_args_for(&cold.iter().map(String::as_str).collect::<Vec<_>>());
        let first = run_corpus(&cold_args).expect("cold corpus run");
        assert!(first.contains("corpus: 2 documents"));
        assert!(first.contains("@east") && first.contains("@west"));
        // The cache now holds one .xidx per document; a warm run loads them
        // (a corrupted cache would fall back to rebuilding, not fail).
        assert!(std::path::Path::new(&cache).join("east.xidx").exists());
        let second = run_corpus(&cold_args).expect("warm corpus run");
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("ingested") && !l.contains(" in "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&first), strip(&second));
    }

    #[test]
    fn corpus_mode_surfaces_typed_errors() {
        let tmp = TempDir::new("emptydir");
        let dir = tmp.path("");
        let c = corpus_args_for(&["--dir", &dir]);
        assert!(matches!(run_corpus(&c), Err(XsactError::EmptyCorpus)));
        let c = corpus_args_for(&["--docs", "2", "--movies", "20", "--query", "!!!"]);
        assert!(matches!(run_corpus(&c), Err(XsactError::EmptyQuery)));
        // An index cache without a directory corpus would never be read.
        let c = corpus_args_for(&["--docs", "2", "--index-dir", &tmp.path("cache")]);
        assert!(matches!(run_corpus(&c), Err(XsactError::InvalidConfig(_))));
    }

    #[test]
    fn corpus_mode_explain_prints_aggregate_counters() {
        let c = corpus_args_for(&["--docs", "2", "--movies", "30", "--explain"]);
        let out = run_corpus(&c).expect("corpus run");
        assert!(out.contains("executor: "), "{out}");
        assert!(!out.contains("executor: 0 postings scanned"), "work must be counted:\n{out}");
    }

    #[test]
    fn corpus_mode_top_below_two_keeps_the_ranking_output() {
        let c = corpus_args_for(&["--docs", "2", "--movies", "30", "--top", "1"]);
        let out = run_corpus(&c).expect("a small --top is not an error");
        assert!(out.contains("results from"), "ranking still printed:\n{out}");
        assert!(out.contains("--top 1 leaves fewer"), "friendly note expected:\n{out}");
        assert!(!out.contains("DoD ="), "no comparison possible");
    }
}
